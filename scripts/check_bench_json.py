#!/usr/bin/env python3
"""Validate BENCH_*.json files emitted by the benchmark binaries.

CI's bench-smoke job runs every benchmark with --json and gates on this
script: a malformed, empty, or schema-breaking trajectory file fails the
build, so machine-readable benchmark output can never silently rot.

Schema (see README.md, "Machine-readable benchmark output"):

    {
      "bench": "<name>",                  # non-empty string
      "title": "<human title>",           # non-empty string
      "host": {                           # host-side (non-virtual) metrics
        "wall_seconds": 1.23,             # process wall-clock, > 0
        "peak_rss_bytes": 123456          # getrusage peak RSS, >= 0
      },
      "time_unit": "virtual_seconds",
      "params": {"scale": 0.02, ...},     # object, may be empty
      "tables": [                         # at least one table
        {
          "name": "<table name>",
          "columns": ["col", ...],        # at least one column
          "rows": [[cell, ...], ...]      # at least one row; every row has
        }                                 # len(columns) cells; each cell is
      ]                                   # a number, a string, or null
    }

Usage: check_bench_json.py [--max-wall-seconds=S] [--max-rss-bytes=B] \
    [--expect-count=N] FILE [FILE...]
Exits nonzero on the first invalid file — a MISSING or EMPTY report file is
an explicit failure (a bench that crashed or lost its --json write must
never pass the gate by simply not producing output). With
--max-wall-seconds, a file whose host.wall_seconds exceeds the budget
fails: that is the CI gate that turns a host-performance regression into a
red build. --max-rss-bytes budgets host.peak_rss_bytes the same way (it
accepts suffixed values like 2GiB/512MiB) — the gate that keeps the
million-task sweep's resident set bounded. With --expect-count, fewer (or
more) report files than expected fail the run — the guard against a shell
glob silently matching a partial set.
"""

import json
import math
import os
import sys


class SchemaError(Exception):
    pass


def parse_bytes(text):
    """'2GiB', '512MiB', '1048576' -> int bytes (binary suffixes only,
    matched case-insensitively)."""
    suffixes = {"kib": 1024, "mib": 1024**2, "gib": 1024**3}
    lowered = text.lower()
    for suffix, mult in suffixes.items():
        if lowered.endswith(suffix):
            return int(float(text[:-len(suffix)]) * mult)
    return int(text)


def check_report(doc, max_wall_seconds=None, max_rss_bytes=None):
    if not isinstance(doc, dict):
        raise SchemaError("top level is not an object")
    for key in ("bench", "title", "time_unit"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            raise SchemaError(f"missing or empty string field '{key}'")
    if not isinstance(doc.get("params"), dict):
        raise SchemaError("'params' is not an object")
    host = doc.get("host")
    if not isinstance(host, dict):
        raise SchemaError("'host' is missing or not an object")
    for key, minimum in (("wall_seconds", 0.0), ("peak_rss_bytes", 0)):
        value = host.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"host.{key} is missing or not a number")
        if not math.isfinite(value) or value < minimum:
            raise SchemaError(f"host.{key} = {value!r} is invalid")
    if max_wall_seconds is not None and host["wall_seconds"] > max_wall_seconds:
        raise SchemaError(
            f"host.wall_seconds = {host['wall_seconds']:.2f} exceeds the "
            f"budget of {max_wall_seconds:.2f} s (host-perf regression)")
    if max_rss_bytes is not None and host["peak_rss_bytes"] > max_rss_bytes:
        raise SchemaError(
            f"host.peak_rss_bytes = {host['peak_rss_bytes']:,} exceeds the "
            f"budget of {max_rss_bytes:,} bytes (resident-set regression)")
    tables = doc.get("tables")
    if not isinstance(tables, list) or not tables:
        raise SchemaError("'tables' is missing or empty")
    for table in tables:
        check_table(table)
    if doc["bench"] == "compress":
        check_compress_semantics(doc)


def check_compress_semantics(doc):
    """bench_compress carries semantic gates beyond the generic schema:
    its ratio and throughput columns must be positive finite numbers — a
    null cell here would mean a zero-timing division leaked into the
    trajectory the README quotes."""
    table = next(
        (t for t in doc["tables"] if t.get("name") == "compress"), None)
    if table is None:
        raise SchemaError("bench 'compress': no table named 'compress'")
    required = ("ratio", "write_mbps", "read_mbps")
    for col in required:
        if col not in table["columns"]:
            raise SchemaError(f"bench 'compress': missing column '{col}'")
    index = {col: table["columns"].index(col) for col in required}
    for i, row in enumerate(table["rows"]):
        for col, j in index.items():
            value = row[j]
            if (isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or not math.isfinite(value) or value <= 0):
                raise SchemaError(
                    f"bench 'compress' row {i}: {col} = {value!r} must be "
                    f"a positive finite number")


def check_table(table):
    if not isinstance(table, dict):
        raise SchemaError("table is not an object")
    name = table.get("name")
    if not isinstance(name, str) or not name:
        raise SchemaError("table without a name")
    columns = table.get("columns")
    if not isinstance(columns, list) or not columns:
        raise SchemaError(f"table '{name}': missing or empty 'columns'")
    if not all(isinstance(c, str) and c for c in columns):
        raise SchemaError(f"table '{name}': non-string column name")
    rows = table.get("rows")
    if not isinstance(rows, list) or not rows:
        raise SchemaError(f"table '{name}': missing or empty 'rows'")
    numeric_cells = 0
    for i, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(columns):
            raise SchemaError(
                f"table '{name}' row {i}: expected {len(columns)} cells, "
                f"got {row if not isinstance(row, list) else len(row)}")
        for cell in row:
            if cell is None or isinstance(cell, str):
                continue
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                raise SchemaError(
                    f"table '{name}' row {i}: invalid cell {cell!r}")
            if not math.isfinite(cell):
                raise SchemaError(
                    f"table '{name}' row {i}: non-finite number {cell!r}")
            numeric_cells += 1
    if numeric_cells == 0:
        raise SchemaError(f"table '{name}': no numeric cells at all")


def main(argv):
    max_wall_seconds = None
    max_rss_bytes = None
    expect_count = None
    paths = []
    for arg in argv[1:]:
        try:
            if arg.startswith("--max-wall-seconds="):
                max_wall_seconds = float(arg.split("=", 1)[1])
                continue
            if arg.startswith("--max-rss-bytes="):
                max_rss_bytes = parse_bytes(arg.split("=", 1)[1])
                continue
            if arg.startswith("--expect-count="):
                expect_count = int(arg.split("=", 1)[1])
                continue
        except ValueError:
            print(f"invalid value in {arg} (e.g. --max-rss-bytes takes "
                  f"2GiB, 512MiB, or a plain byte count)", file=sys.stderr)
            return 2
        if arg.startswith("--"):
            print(f"unknown option {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    if expect_count is not None and len(paths) != expect_count:
        print(f"FAIL: expected {expect_count} report files, got {len(paths)}"
              f" — a benchmark lost its --json output", file=sys.stderr)
        return 1
    for path in paths:
        try:
            if not os.path.exists(path):
                raise SchemaError("report file is missing — the benchmark "
                                  "never wrote its --json output")
            if os.path.getsize(path) == 0:
                raise SchemaError("report file is empty (0 bytes) — the "
                                  "benchmark crashed before writing results")
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            check_report(doc, max_wall_seconds, max_rss_bytes)
        except (OSError, json.JSONDecodeError, SchemaError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            return 1
        tables = ", ".join(
            f"{t['name']}({len(t['rows'])} rows)" for t in doc["tables"])
        print(f"ok   {path}: bench={doc['bench']} "
              f"wall={doc['host']['wall_seconds']:.2f}s tables: {tables}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
