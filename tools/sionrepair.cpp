// sionrepair — reconstruct the lost metablock 2 of a multifile from the
// per-chunk recovery frames (requires the file to have been written with
// chunk frames enabled).
//
// A frame-based repair only re-derives metadata from the bytes that
// survive; when the checkpoint was written with buddy replication or ECC
// parity, a redundancy-based heal reconstructs the lost bytes themselves.
// The tool therefore reports discovered protection companions and refuses
// the weaker repair while an intact heal source exists.
//
// Usage: sionrepair [--force] <multifile>
#include <cstdio>

#include "common/options.h"
#include "ext/recovery.h"
#include "fs/posix_fs.h"

int main(int argc, char** argv) {
  const sion::Options opts(argc, argv);
  if (opts.positional().size() != 1) {
    std::fprintf(stderr, "usage: %s [--force] <multifile>\n",
                 opts.program().c_str());
    return 2;
  }
  const std::string& name = opts.positional()[0];
  sion::fs::PosixFs fs;

  auto companions = sion::ext::discover_protection(fs, name);
  if (!companions.ok()) {
    std::fprintf(stderr, "sionrepair: %s\n",
                 companions.status().to_string().c_str());
    return 1;
  }
  if (!companions.value().empty()) {
    std::printf("protection companions: %s\n",
                companions.value().to_string().c_str());
  }
  if (companions.value().heal_available() && !opts.get_bool("force")) {
    std::fprintf(
        stderr,
        "sionrepair: an intact heal source exists (%s); a heal "
        "reconstructs the lost bytes byte-identically, while this repair "
        "only rebuilds metadata from surviving ones. Run the protected "
        "restore (ext::Buddy::heal / ext::Ecc::heal) instead, or pass "
        "--force to repair anyway.\n",
        companions.value().to_string().c_str());
    return 1;
  }

  auto report = sion::ext::repair_multifile(fs, name);
  if (!report.ok()) {
    std::fprintf(stderr, "sionrepair: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("physical files: %d, repaired: %d, already intact: %d, "
              "chunks recovered: %llu\n",
              report.value().physical_files, report.value().repaired_files,
              report.value().intact_files,
              static_cast<unsigned long long>(report.value().chunks_recovered));
  return 0;
}
