// sionrepair — reconstruct the lost metablock 2 of a multifile from the
// per-chunk recovery frames (requires the file to have been written with
// chunk frames enabled).
//
// Usage: sionrepair <multifile>
#include <cstdio>

#include "common/options.h"
#include "ext/recovery.h"
#include "fs/posix_fs.h"

int main(int argc, char** argv) {
  const sion::Options opts(argc, argv);
  if (opts.positional().size() != 1) {
    std::fprintf(stderr, "usage: %s <multifile>\n", opts.program().c_str());
    return 2;
  }
  sion::fs::PosixFs fs;
  auto report = sion::ext::repair_multifile(fs, opts.positional()[0]);
  if (!report.ok()) {
    std::fprintf(stderr, "sionrepair: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("physical files: %d, repaired: %d, already intact: %d, "
              "chunks recovered: %llu\n",
              report.value().physical_files, report.value().repaired_files,
              report.value().intact_files,
              static_cast<unsigned long long>(report.value().chunks_recovered));
  return 0;
}
