// sionsplit — extract logical task-local files from a multifile and
// recreate them as physical files.
//
// Usage: sionsplit [--rank=N] <multifile> <output-prefix>
#include <cstdio>

#include "common/options.h"
#include "fs/posix_fs.h"
#include "tools/split.h"

int main(int argc, char** argv) {
  const sion::Options opts(argc, argv);
  if (opts.positional().size() != 2) {
    std::fprintf(stderr, "usage: %s [--rank=N] <multifile> <output-prefix>\n",
                 opts.program().c_str());
    return 2;
  }
  sion::fs::PosixFs fs;
  sion::tools::SplitOptions split;
  split.only_rank = opts.has("rank")
                        ? static_cast<int>(opts.get_u64("rank"))
                        : -1;
  auto n = sion::tools::split_multifile(fs, opts.positional()[0],
                                        opts.positional()[1], split);
  if (!n.ok()) {
    std::fprintf(stderr, "sionsplit: %s\n", n.status().to_string().c_str());
    return 1;
  }
  std::printf("extracted %d logical file(s) to %s.*\n", n.value(),
              opts.positional()[1].c_str());
  return 0;
}
