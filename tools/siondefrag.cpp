// siondefrag — rewrite a multifile with all blocks contracted into a single
// chunk per task and all gaps removed.
//
// Usage: siondefrag [--nfiles=N] [--blksize=SIZE] <input> <output>
#include <cstdio>

#include "common/options.h"
#include "fs/posix_fs.h"
#include "tools/defrag.h"

int main(int argc, char** argv) {
  const sion::Options opts(argc, argv);
  if (opts.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: %s [--nfiles=N] [--blksize=SIZE] <input> <output>\n",
                 opts.program().c_str());
    return 2;
  }
  sion::fs::PosixFs fs;
  sion::tools::DefragOptions defrag;
  defrag.nfiles = static_cast<int>(opts.get_u64("nfiles"));
  defrag.fsblksize = opts.get_u64("blksize");
  auto st = sion::tools::defrag_multifile(fs, opts.positional()[0],
                                          opts.positional()[1], defrag);
  if (!st.ok()) {
    std::fprintf(stderr, "siondefrag: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("defragmented %s -> %s\n", opts.positional()[0].c_str(),
              opts.positional()[1].c_str());
  return 0;
}
