// siondump — print the metadata of a SION multifile.
//
// Usage: siondump [--chunks] <multifile>
#include <cstdio>

#include "common/options.h"
#include "fs/posix_fs.h"
#include "tools/dump.h"

int main(int argc, char** argv) {
  const sion::Options opts(argc, argv);
  if (opts.positional().size() != 1) {
    std::fprintf(stderr, "usage: %s [--chunks] <multifile>\n",
                 opts.program().c_str());
    return 2;
  }
  sion::fs::PosixFs fs;
  sion::tools::DumpOptions dump;
  dump.per_chunk = opts.get_bool("chunks");
  auto text = sion::tools::dump_multifile(fs, opts.positional()[0], dump);
  if (!text.ok()) {
    std::fprintf(stderr, "siondump: %s\n", text.status().to_string().c_str());
    return 1;
  }
  std::fputs(text.value().c_str(), stdout);
  return 0;
}
