#!/usr/bin/env python3
"""sion-lint: project-specific determinism and hygiene linter.

The repo's hardest invariant is bit-identical virtual time: every benchmark
table and the golden determinism suite depend on the simulation consuming no
entropy from the host. Runtime tests catch a determinism leak only after it
has already skewed a schedule; this linter mechanically bans the code
patterns that cause them, at review time.

Rules (see --list-rules for the machine-readable table):

  wall-clock           no host clocks in simulation directories -- virtual
                       time comes from the engine/SimFs cost model only
  raw-random           no rand()/std::random_device/std::mt19937 & friends in
                       simulation directories -- all draws go through
                       common::Rng with a seed that is part of the scenario
  env-access           no getenv/setenv in simulation directories -- host
                       environment must not influence a simulated schedule
  unordered-iteration  no iteration over unordered_{map,set} in simulation
                       directories -- hash-order leaks into output, RNG draw
                       order, or comm ordering (collect + sort instead)
  stdout-logging       no printf/std::cout outside common/log -- diagnostics
                       go through the leveled logger so tools own stdout
  naked-new            no naked new/malloc in simulation directories --
                       ownership goes through unique_ptr/containers
  catch-all            no catch (...) -- it swallows the engine's
                       SION_CHECK failures and makes error paths untestable
  legacy-checkpoint-call
                       no direct write_checkpoint/read_checkpoint calls in
                       library internals (src/ext, src/workloads) -- the
                       free functions are compatibility wrappers; internals
                       go through workloads::CheckpointSession

Suppression: append `// sion-lint: allow(<rule>[, <rule>...])` to the
offending line, or place the comment alone on the line directly above it.
Every suppression should carry a justification comment nearby.

Matching runs over a lightweight token view of each file: comments and
string/char literals are blanked before rules are applied (so a mention of
rand() in a comment never fires), while the comment text is scanned
separately for suppressions.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

# Directories (relative to the repo root) whose code runs inside the
# simulation and must stay deterministic.
SIM_DIRS = ("src/par/", "src/fs/sim/", "src/ext/", "src/workloads/")

SUPPRESS_RE = re.compile(r"sion-lint:\s*allow\(([^)]*)\)")

SOURCE_EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")


class FileView:
    """Per-line code/comment split of one source file.

    `code[i]` is line i with comments and string/char literal *contents*
    blanked (delimiters kept, lengths preserved so columns stay meaningful);
    `comments[i]` is the concatenated comment text of line i.
    """

    def __init__(self, path, relpath, text):
        self.path = path
        self.relpath = relpath
        self.code = []
        self.comments = []
        self._lex(text)
        self.joined_code = "\n".join(self.code)

    def _lex(self, text):
        NORMAL, BLOCK, LINE, STRING, CHAR, RAW = range(6)
        state = NORMAL
        raw_delim = ""
        for line in text.splitlines():
            code_out = []
            comment_out = []
            i = 0
            n = len(line)
            if state == LINE:
                state = NORMAL  # line comments end at the newline
            while i < n:
                c = line[i]
                nxt = line[i + 1] if i + 1 < n else ""
                if state == NORMAL:
                    if c == "/" and nxt == "/":
                        state = LINE
                        comment_out.append(line[i + 2:])
                        code_out.append(" " * (n - i))
                        i = n
                    elif c == "/" and nxt == "*":
                        state = BLOCK
                        code_out.append("  ")
                        i += 2
                    elif c == '"':
                        raw = re.match(r'R"([^(\s\\]{0,16})\(',
                                       line[i:]) if i > 0 and \
                            line[i - 1] == "R" else None
                        if raw:
                            raw_delim = raw.group(1)
                            state = RAW
                            code_out.append(" " * len(raw.group(0)))
                            i += len(raw.group(0))
                        else:
                            state = STRING
                            code_out.append('"')
                            i += 1
                    elif c == "'":
                        state = CHAR
                        code_out.append("'")
                        i += 1
                    else:
                        code_out.append(c)
                        i += 1
                elif state == BLOCK:
                    if c == "*" and nxt == "/":
                        state = NORMAL
                        code_out.append("  ")
                        i += 2
                    else:
                        comment_out.append(c)
                        code_out.append(" ")
                        i += 1
                elif state in (STRING, CHAR):
                    quote = '"' if state == STRING else "'"
                    if c == "\\":
                        code_out.append("  ")
                        i += 2
                    elif c == quote:
                        state = NORMAL
                        code_out.append(quote)
                        i += 1
                    else:
                        code_out.append(" ")
                        i += 1
                elif state == RAW:
                    end = line.find(')' + raw_delim + '"', i)
                    if end == -1:
                        code_out.append(" " * (n - i))
                        i = n
                    else:
                        skip = end + len(raw_delim) + 2
                        code_out.append(" " * (skip - i))
                        i = skip
                        state = NORMAL
            # Unterminated ordinary string/char at EOL: not legal C++;
            # recover rather than poison the next line.
            if state in (STRING, CHAR, LINE):
                state = NORMAL
            self.code.append("".join(code_out))
            self.comments.append("".join(comment_out))

    def suppressed_rules(self, lineno):
        """Rules allowed on 1-based line `lineno` (same line or line above)."""
        allowed = set()
        for idx in (lineno - 1, lineno - 2):
            if 0 <= idx < len(self.comments):
                m = SUPPRESS_RE.search(self.comments[idx])
                if m:
                    allowed.update(
                        r.strip() for r in m.group(1).split(",") if r.strip())
        return allowed


def in_sim_dirs(relpath):
    return relpath.startswith(SIM_DIRS)


def _line_findings(view, pattern, message, scope=in_sim_dirs):
    if not scope(view.relpath):
        return
    for i, code in enumerate(view.code, start=1):
        m = pattern.search(code)
        if m:
            yield (i, message.format(match=m.group(0).strip()))


# --- rule: wall-clock -------------------------------------------------------

WALL_CLOCK_RE = re.compile(
    r"(?:std::)?chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\b(?:gettimeofday|clock_gettime|timespec_get|localtime|gmtime"
    r"|strftime|difftime)\s*\("
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\)"
    r"|\bclock\s*\(\s*\)")


def check_wall_clock(view):
    yield from _line_findings(
        view, WALL_CLOCK_RE,
        "host clock `{match}` in simulation code; charge virtual time via "
        "TaskState::advance_to / the SimFs cost model instead")


# --- rule: raw-random -------------------------------------------------------

RAW_RANDOM_RE = re.compile(
    r"\b(?:rand|srand|random|drand48|lrand48|mrand48|srandom)\s*\("
    r"|(?:std::)?random_device\b"
    r"|(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux\w+|knuth_b)\b")


def check_raw_random(view):
    yield from _line_findings(
        view, RAW_RANDOM_RE,
        "host entropy source `{match}` in simulation code; draw from "
        "common::Rng with a seed that is part of the scenario config")


# --- rule: env-access -------------------------------------------------------

ENV_ACCESS_RE = re.compile(
    r"\b(?:getenv|secure_getenv|setenv|putenv|unsetenv)\s*\(")


def check_env_access(view):
    yield from _line_findings(
        view, ENV_ACCESS_RE,
        "environment access `{match}` in simulation code; host environment "
        "must not influence a simulated schedule -- plumb it through config")


# --- rule: unordered-iteration ---------------------------------------------

UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std::)?unordered_(?:map|set)\b")
UNORDERED_DECL_RE = re.compile(r"\b(?:std::)?unordered_(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*(?:\([^()]*\)[^;()]*)*)\)")
RANGE_SPLIT_RE = re.compile(r"(?<!:):(?!:)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*c?begin\s*\(")


def _balanced_angle_end(text, start):
    """Index just past the `>` matching the `<` at `text[start]`, or -1."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # Tolerate `>>` closing two levels (template syntax, not shift:
            # this runs only on declaration sites found by UNORDERED_DECL_RE).
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}" and depth == 0:
            return -1
        i += 1
    return -1


def _unordered_names(view):
    """Identifiers declared (heuristically) with an unordered container type,
    in this file or its companion header/source."""
    names = set()
    texts = [view.joined_code]
    base, ext = os.path.splitext(view.path)
    companion = base + (".h" if ext == ".cpp" else ".cpp")
    if os.path.isfile(companion):
        with open(companion, encoding="utf-8", errors="replace") as f:
            texts.append(
                FileView(companion, "companion", f.read()).joined_code)
    ident_after = re.compile(r"\s*&?\s*(\w+)\s*(?=[;={,)])")
    for text in texts:
        aliases = set(UNORDERED_ALIAS_RE.findall(text))
        decl_starts = [m.end() - 1 for m in UNORDERED_DECL_RE.finditer(text)]
        for alias in aliases:
            for m in re.finditer(r"\b%s\b" % re.escape(alias), text):
                if UNORDERED_ALIAS_RE.search(
                        text[max(0, m.start() - 64):m.end()]):
                    continue  # the alias definition itself
                pos = m.end()
                if pos < len(text) and text[pos:].lstrip()[:1] == "<":
                    pos = _balanced_angle_end(text, text.index("<", pos))
                    if pos == -1:
                        continue
                im = ident_after.match(text, pos)
                if im:
                    names.add(im.group(1))
        for start in decl_starts:
            end = _balanced_angle_end(text, start)
            if end == -1:
                continue
            im = ident_after.match(text, end)
            if im:
                names.add(im.group(1))
    return names


def check_unordered_iteration(view):
    if not in_sim_dirs(view.relpath):
        return
    names = _unordered_names(view)
    if not names:
        return
    msg = ("iteration over unordered container `{0}`: hash order leaks into "
           "output/draw/comm ordering; collect keys and sort, or use an "
           "ordered container")
    for i, code in enumerate(view.code, start=1):
        for m in RANGE_FOR_RE.finditer(code):
            parts = RANGE_SPLIT_RE.split(m.group(1))
            if len(parts) < 2:
                continue
            idents = re.findall(r"\w+", parts[-1])
            if idents and idents[-1] in names:
                yield (i, msg.format(idents[-1]))
        for m in BEGIN_CALL_RE.finditer(code):
            if m.group(1) in names:
                yield (i, msg.format(m.group(1)))


# --- rule: stdout-logging ---------------------------------------------------

STDOUT_RE = re.compile(
    r"\b(?:printf|fprintf|vprintf|vfprintf|puts|fputs|putchar|fputc)\s*\("
    r"|std::(?:cout|cerr|clog)\b")


def stdout_scope(relpath):
    # The leveled logger implements itself on fprintf; everything else in the
    # library reports through Status or common/log. (tools/, bench/ and
    # examples/ live outside src/ and legitimately own their stdout.)
    return relpath.startswith("src/") and \
        not relpath.startswith("src/common/log.")


def check_stdout_logging(view):
    yield from _line_findings(
        view, STDOUT_RE,
        "direct output `{match}` in library code; use SION_LOG (common/log.h)"
        " or return the text to the caller", scope=stdout_scope)


# --- rule: naked-new --------------------------------------------------------

NAKED_NEW_RE = re.compile(r"\bnew\b|\b(?:malloc|calloc|realloc|free)\s*\(")
OWNERSHIP_WRAP_RE = re.compile(
    r"unique_ptr|shared_ptr|make_unique|make_shared")


def check_naked_new(view):
    if not in_sim_dirs(view.relpath):
        return
    for i, code in enumerate(view.code, start=1):
        m = NAKED_NEW_RE.search(code)
        # `unique_ptr<T>(new T(...))` on one line is the idiom for types with
        # private constructors (make_unique cannot reach them) -- allowed.
        if m and not OWNERSHIP_WRAP_RE.search(code):
            yield (i, "naked `%s` in simulation code; own allocations with "
                      "unique_ptr/containers" % m.group(0).strip())


# --- rule: catch-all --------------------------------------------------------

CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")


def src_scope(relpath):
    return relpath.startswith("src/")


def check_catch_all(view):
    yield from _line_findings(
        view, CATCH_ALL_RE,
        "`catch (...)` swallows SION_CHECK failures and unknown errors; "
        "catch specific types or let it propagate", scope=src_scope)


# --- rule: legacy-checkpoint-call -------------------------------------------

LEGACY_CHECKPOINT_RE = re.compile(r"\b(?:write|read)_checkpoint\s*\(")

# The compatibility wrappers themselves (declaration + implementation).
LEGACY_CHECKPOINT_EXEMPT = (
    "src/workloads/checkpoint.h",
    "src/workloads/checkpoint.cpp",
)


def legacy_checkpoint_scope(relpath):
    return relpath.startswith(("src/ext/", "src/workloads/")) and \
        relpath not in LEGACY_CHECKPOINT_EXEMPT


def check_legacy_checkpoint_call(view):
    yield from _line_findings(
        view, LEGACY_CHECKPOINT_RE,
        "legacy one-shot call `{match})` in library internals; open a "
        "workloads::CheckpointSession (write_async/wait/close) or "
        "CheckpointSession::restore instead",
        scope=legacy_checkpoint_scope)


RULES = [
    ("wall-clock", check_wall_clock,
     "no host clocks in " + ", ".join(SIM_DIRS)),
    ("raw-random", check_raw_random,
     "no host entropy (rand, random_device, mt19937, ...) in sim dirs"),
    ("env-access", check_env_access,
     "no getenv/setenv in sim dirs"),
    ("unordered-iteration", check_unordered_iteration,
     "no iteration over unordered_{map,set} in sim dirs"),
    ("stdout-logging", check_stdout_logging,
     "no printf/std::cout in src/ outside common/log"),
    ("naked-new", check_naked_new,
     "no naked new/malloc in sim dirs"),
    ("catch-all", check_catch_all,
     "no catch (...) anywhere in src/"),
    ("legacy-checkpoint-call", check_legacy_checkpoint_call,
     "no write_checkpoint/read_checkpoint calls in src/ext, src/workloads "
     "internals (use workloads::CheckpointSession)"),
]


def collect_files(root, paths):
    files = []
    for p in paths:
        ap = os.path.join(root, p) if not os.path.isabs(p) else p
        if os.path.isdir(ap):
            for dirpath, _dirnames, filenames in os.walk(ap):
                for name in sorted(filenames):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(ap):
            files.append(ap)
        else:
            raise FileNotFoundError(ap)
    return sorted(set(files))


def lint_files(root, files):
    findings = []
    suppressed = 0
    for path in files:
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as f:
            view = FileView(path, relpath, f.read())
        for rule_name, check, _desc in RULES:
            for lineno, message in check(view):
                if rule_name in view.suppressed_rules(lineno):
                    suppressed += 1
                    continue
                findings.append({
                    "file": relpath,
                    "line": lineno,
                    "rule": rule_name,
                    "message": message,
                })
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))
    return findings, suppressed


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="sion-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint, relative to "
                             "--root (default: src)")
    parser.add_argument("--root", default=None,
                        help="repo root the rule scopes are resolved "
                             "against (default: parent of this script)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, _check, desc in RULES:
            print("%-20s %s" % (name, desc))
        return 0

    root = os.path.abspath(
        args.root if args.root else
        os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
    paths = args.paths if args.paths else ["src"]
    try:
        files = collect_files(root, paths)
    except FileNotFoundError as err:
        print("sion-lint: no such file or directory: %s" % err, file=sys.stderr)
        return 2

    findings, suppressed = lint_files(root, files)

    if args.json:
        json.dump({
            "version": 1,
            "root": root,
            "files_scanned": len(files),
            "rules": [name for name, _c, _d in RULES],
            "suppressed": suppressed,
            "findings": findings,
        }, sys.stdout, indent=2)
        print()
    else:
        for f in findings:
            print("%s:%d: [%s] %s" % (f["file"], f["line"], f["rule"],
                                      f["message"]))
        print("sion-lint: %d file(s), %d finding(s), %d suppressed"
              % (len(files), len(findings), suppressed))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
