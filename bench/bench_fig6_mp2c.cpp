// Figure 6: "Times needed by MP2C for writing and reading restart files on
// 1000 cores of Jugene with and without using SIONlib".
//
// The original MP2C used the single-file-sequential scheme (one designated
// I/O task, alternating gather and write with a bounded staging buffer),
// which limited feasible problem sizes to ~10 M particles; with SIONlib
// (1000 logical files in ONE physical file) the same machine handled over a
// billion particles. Restart data is 52 bytes per particle. SIONlib writes
// at least one 2 MiB file-system block per task, so its advantage
// materialises for larger problem sizes (>= ~33 M particles), where it
// reaches 1-2 orders of magnitude.
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "workloads/checkpoint.h"
#include "workloads/mp2c.h"

namespace {

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::bench;      // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

struct Point {
  double write_s;
  double read_s;
};

Point run_point(IoStrategy strategy, int ntasks, std::uint64_t particles) {
  const fs::SimConfig machine = fs::JugeneConfig();
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));

  CheckpointSpec spec;
  spec.path = "restart.ckpt";
  spec.strategy = strategy;
  spec.nfiles = 1;  // "The 1000 task-local files were mapped onto a single
                    //  physical file."

  Point p{};
  p.write_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    const std::uint64_t bytes =
        mp2c_local_particles(particles, world.size(), world.rank()) *
        kParticleBytes;
    SION_CHECK(write_checkpoint(fs, world, spec,
                                fs::DataView::fill(std::byte{'p'}, bytes))
                   .ok());
  });
  fs.drop_caches();  // restart happens in a later job
  p.read_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    const std::uint64_t bytes =
        mp2c_local_particles(particles, world.size(), world.rank()) *
        kParticleBytes;
    SION_CHECK(read_checkpoint(fs, world, spec, bytes, {}).ok());
  });
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  // --scale shrinks the task count and problem sizes together, preserving
  // the per-task payload.
  const double scale = opts.get_double("scale", 1.0);
  const int ntasks = std::max(
      4, static_cast<int>(static_cast<double>(opts.get_u64("ntasks", 1000)) *
                          scale));
  const double max_mio = opts.get_double("max-mio", 1000.0);

  print_header("Figure 6: MP2C restart file I/O on 1000 Jugene cores",
               "single-file-sequential vs SIONlib; ~1-2 orders of magnitude "
               "improvement for >= 33 M particles");

  Report report("fig6_mp2c", "MP2C restart file I/O, sequential vs SIONlib");
  report.set_param("scale", scale);
  report.set_param("ntasks", ntasks);
  Table& table = report.table(
      "restart", {"mio_particles", "sion_write_s", "sion_read_s",
                  "seq_write_s", "seq_read_s"});

  std::printf("%12s %14s %14s %16s %16s\n", "Mio part.", "write SION(s)",
              "read SION(s)", "write seq(s)", "read seq(s)");
  const std::vector<double> mio_points = {1, 3.3, 10, 33, 100, 330, 1000};
  for (const double mio : mio_points) {
    if (mio > max_mio) break;
    const auto particles = static_cast<std::uint64_t>(mio * 1.0e6 * scale);
    const Point sion = run_point(IoStrategy::kSion, ntasks, particles);
    const Point seq = run_point(IoStrategy::kSingleFileSeq, ntasks, particles);
    std::printf("%12.1f %14.2f %14.2f %16.2f %16.2f\n", mio, sion.write_s,
                sion.read_s, seq.write_s, seq.read_s);
    table.row({mio, sion.write_s, sion.read_s, seq.write_s, seq.read_s});
  }
  return report.write_if_requested(opts);
}
