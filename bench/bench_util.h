// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary prints one table or figure of the paper's evaluation section
// (see DESIGN.md for the index). Times are *virtual seconds* from the
// discrete-event machine models in src/fs/sim — deterministic run-to-run —
// so the tables are reproducible on any host; bandwidth rows use decimal
// MB/s like the paper.
#pragma once

#include <sys/resource.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/narrow.h"
#include "common/options.h"
#include "common/units.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"

namespace sion::bench {

inline par::EngineConfig engine_config_for(const fs::SimConfig& machine,
                                           std::size_t stack_bytes = 48 * 1024,
                                           int shards = 1) {
  par::EngineConfig config;
  config.stack_bytes = stack_bytes;
  config.network = machine.network;
  config.shards = shards;
  return config;
}

// Run `body` over `ntasks` tasks and return the phase's virtual makespan.
template <typename Fn>
double timed_run(par::Engine& engine, int ntasks, Fn&& body) {
  const double t0 = engine.epoch();
  engine.run(ntasks, std::forward<Fn>(body));
  return engine.epoch() - t0;
}

// When a benchmark shrinks task counts by --scale, machine features that
// are granular in tasks must shrink with them, or a scaled run engages a
// different fraction of the machine than the full configuration would.
inline fs::SimConfig scaled_machine(fs::SimConfig machine, double scale) {
  if (machine.tasks_per_ion > 0) {
    machine.tasks_per_ion =
        std::max(1, checked_trunc<int>(machine.tasks_per_ion * scale));
  }
  return machine;
}

inline double mbps(std::uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / seconds / 1.0e6 : 0.0;
}

// Host wall-clock stopwatch for per-point `wall_s` columns: unlike every
// other number in a report this measures the METAL, not the model — it is
// what the CI wall-time budget gates on.
class WallTimer {
 public:
  WallTimer() : t0_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

// Peak resident set size of this process (getrusage; kernel reports KiB).
inline std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

inline void print_header(const char* title, const char* paper_says) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n", paper_says);
}

// Task counts in the paper's binary style ("64Ki"); see common/units.
inline std::string human_tasks(int n) {
  return format_tasks(static_cast<std::uint64_t>(n));
}

// ---------------------------------------------------------------------------
// Machine-readable results: every benchmark records its table rows in a
// Report alongside the printed text and emits them as BENCH_<name>.json when
// invoked with --json[=<path>]. CI's bench-smoke job runs each binary at a
// reduced --scale and gates on this output (see scripts/check_bench_json.py
// for the consumed schema).
// ---------------------------------------------------------------------------

// One table cell: a finite number or a string. Non-finite numbers (a
// division by a zero timing at extreme --scale) serialize as null.
class Cell {
 public:
  Cell(double v) : num_(v) {}              // NOLINT(google-explicit-constructor)
  Cell(int v) : num_(v) {}                 // NOLINT(google-explicit-constructor)
  Cell(std::uint64_t v)                    // NOLINT(google-explicit-constructor)
      : num_(static_cast<double>(v)) {}
  Cell(const char* s) : str_(s), is_str_(true) {}  // NOLINT
  Cell(std::string s)                      // NOLINT(google-explicit-constructor)
      : str_(std::move(s)), is_str_(true) {}

  void append_json(std::string& out) const {
    if (is_str_) {
      out += '"';
      for (const char c : str_) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char esc[8];
              std::snprintf(esc, sizeof(esc), "\\u%04x", c);
              out += esc;
            } else {
              out += c;
            }
        }
      }
      out += '"';
      return;
    }
    if (!std::isfinite(num_)) {
      out += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", num_);
    out += buf;
  }

 private:
  double num_ = 0.0;
  std::string str_;
  bool is_str_ = false;
};

struct Table {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<Cell>> rows;

  void row(std::vector<Cell> cells) {
    SION_CHECK(cells.size() == columns.size())
        << "table '" << name << "' row has " << cells.size() << " cells for "
        << columns.size() << " columns";
    rows.push_back(std::move(cells));
  }
};

class Report {
 public:
  Report(std::string name, std::string title)
      : name_(std::move(name)), title_(std::move(title)) {}

  Table& table(std::string table_name, std::vector<std::string> columns) {
    tables_.push_back(Table{std::move(table_name), std::move(columns), {}});
    return tables_.back();
  }

  void set_param(const std::string& key, Cell value) {
    params_.emplace_back(key, std::move(value));
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\n  \"bench\": ";
    Cell(name_).append_json(out);
    out += ",\n  \"title\": ";
    Cell(title_).append_json(out);
    // Host-side metrics: wall-clock from Report construction to
    // serialization plus peak RSS. These are the only non-virtual numbers
    // in the file; CI's bench-smoke job budgets on wall_seconds so host
    // performance regressions fail the build (scripts/check_bench_json.py
    // --max-wall-seconds).
    out += ",\n  \"host\": {\"wall_seconds\": ";
    Cell(wall_.seconds()).append_json(out);
    out += ", \"peak_rss_bytes\": ";
    Cell(peak_rss_bytes()).append_json(out);
    out += "},\n  \"time_unit\": \"virtual_seconds\",\n  \"params\": {";
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (i != 0) out += ", ";
      Cell(params_[i].first).append_json(out);
      out += ": ";
      params_[i].second.append_json(out);
    }
    out += "},\n  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const Table& table = tables_[t];
      out += t == 0 ? "\n" : ",\n";
      out += "    {\"name\": ";
      Cell(table.name).append_json(out);
      out += ", \"columns\": [";
      for (std::size_t c = 0; c < table.columns.size(); ++c) {
        if (c != 0) out += ", ";
        Cell(table.columns[c]).append_json(out);
      }
      out += "],\n     \"rows\": [";
      for (std::size_t r = 0; r < table.rows.size(); ++r) {
        out += r == 0 ? "\n" : ",\n";
        out += "       [";
        const auto& row = table.rows[r];
        for (std::size_t c = 0; c < row.size(); ++c) {
          if (c != 0) out += ", ";
          row[c].append_json(out);
        }
        out += "]";
      }
      out += "\n     ]}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  // Honour --json[=<path>]; call at the end of main. Returns 0, or 1 when
  // the report cannot be fully written (so the binary exits nonzero under
  // CI instead of silently dropping the trajectory file). Failures say WHY
  // (errno) and never leave a half-written file behind for the schema gate
  // to mistake for a truncated-but-present report.
  [[nodiscard]] int write_if_requested(const Options& opts) const {
    if (!opts.has("json")) return 0;
    std::string path = opts.get_string("json");
    if (path.empty() || path == "true") path = "BENCH_" + name_ + ".json";
    const std::string json = to_json();
    errno = 0;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "error: cannot write benchmark report %s: %s\n",
                   path.c_str(), std::strerror(errno));
      return 1;
    }
    const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
    const int write_errno = errno;
    const int close_rc = std::fclose(f);
    if (n != json.size() || close_rc != 0) {
      std::fprintf(stderr,
                   "error: short write of benchmark report %s (%zu of %zu "
                   "bytes): %s\n",
                   path.c_str(), n, json.size(),
                   std::strerror(n != json.size() ? write_errno : errno));
      std::remove(path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }

 private:
  std::string name_;
  std::string title_;
  WallTimer wall_;  // started at Report construction
  std::vector<std::pair<std::string, Cell>> params_;
  std::deque<Table> tables_;  // deque: table() hands out stable references
};

}  // namespace sion::bench
