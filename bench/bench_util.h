// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary prints one table or figure of the paper's evaluation section
// (see DESIGN.md for the index). Times are *virtual seconds* from the
// discrete-event machine models in src/fs/sim — deterministic run-to-run —
// so the tables are reproducible on any host; bandwidth rows use decimal
// MB/s like the paper.
#pragma once

#include <cstdio>
#include <string>

#include "common/units.h"
#include "common/log.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"

namespace sion::bench {

inline par::EngineConfig engine_config_for(const fs::SimConfig& machine,
                                           std::size_t stack_bytes = 48 * 1024) {
  par::EngineConfig config;
  config.stack_bytes = stack_bytes;
  config.network = machine.network;
  return config;
}

// Run `body` over `ntasks` tasks and return the phase's virtual makespan.
template <typename Fn>
double timed_run(par::Engine& engine, int ntasks, Fn&& body) {
  const double t0 = engine.epoch();
  engine.run(ntasks, std::forward<Fn>(body));
  return engine.epoch() - t0;
}

// When a benchmark shrinks task counts by --scale, machine features that
// are granular in tasks must shrink with them, or a scaled run engages a
// different fraction of the machine than the full configuration would.
inline fs::SimConfig scaled_machine(fs::SimConfig machine, double scale) {
  if (machine.tasks_per_ion > 0) {
    machine.tasks_per_ion = std::max(
        1, static_cast<int>(machine.tasks_per_ion * scale));
  }
  return machine;
}

inline double mbps(std::uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / seconds / 1.0e6 : 0.0;
}

inline void print_header(const char* title, const char* paper_says) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n", paper_says);
}

inline std::string human_tasks(int n) {
  if (n % 1024 == 0 && n >= 1024) return std::to_string(n / 1024) + "k";
  return std::to_string(n);
}

}  // namespace sion::bench
