// Buddy-redundancy cost/benefit on the Jugene machine model: what does
// writing r copies of every checkpoint cost, and what does a restart pay
// when failure domains are actually gone and the heal path reconstructs
// them from the surviving replicas? Sweeps replication degree, aggregation
// group size, domains lost, and degraded-bandwidth severity — the
// operating envelope of ext::Buddy (write overhead is bounded by ~r x, and
// restores stay possible, merely slower, through r-1 domain losses).
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "core/metadata.h"
#include "ext/buddy.h"
#include "fs/sim/fault.h"
#include "workloads/checkpoint.h"

namespace {

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::bench;      // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

struct Point {
  double write_s;
  double restore_s;
};

// Write one buddy checkpoint at `ntasks` over `domains` failure domains
// with `replicas` total copies, then lose the first `lose` domains (every
// file they own) and optionally brown-out the rest to `degrade` of healthy
// bandwidth, and restore at ntasks/4 tasks through the heal + remap path.
Point run_point(const fs::SimConfig& machine, int ntasks, int domains,
                int replicas, int group_size, std::uint64_t chunk_bytes,
                int lose, double degrade) {
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));

  CheckpointSpec spec;
  spec.path = "buddy.ckpt";
  spec.strategy = IoStrategy::kSion;
  ext::BuddyConfig buddy;
  buddy.replicas = replicas;
  buddy.num_domains = domains;
  spec.protection = buddy;
  if (group_size > 0) {
    ext::CollectiveConfig aggregation;
    aggregation.group_size = group_size;
    aggregation.alignment = ext::CollectiveConfig::Alignment::kPacked;
    spec.collective = aggregation;
  }

  Point p{};
  p.write_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    SION_CHECK(write_checkpoint(fs, world, spec,
                                fs::DataView::fill(std::byte{'b'},
                                                   chunk_bytes))
                   .ok());
  });
  fs.drop_caches();  // the restart happens in a later job

  fs::FaultPlan plan;
  for (int d = 0; d < lose; ++d) {
    plan.lose(core::physical_file_name("buddy.ckpt", d, domains));
    for (int k = 1; k < replicas; ++k) {
      plan.lose(core::physical_file_name(
          ext::Buddy::replica_name("buddy.ckpt", k), d, domains));
    }
  }
  if (degrade < 1.0) plan.degrade("buddy.ckpt*", degrade);
  if (!plan.faults.empty()) fs.arm_faults(plan);

  const std::uint64_t total =
      chunk_bytes * static_cast<std::uint64_t>(ntasks);
  const int nreaders = std::max(1, ntasks / 4);
  CheckpointSpec restart = spec;
  restart.restart_ntasks = nreaders;
  p.restore_s = timed_run(engine, nreaders, [&](par::Comm& world) {
    const std::uint64_t share =
        total * static_cast<std::uint64_t>(world.rank() + 1) /
            static_cast<std::uint64_t>(nreaders) -
        total * static_cast<std::uint64_t>(world.rank()) /
            static_cast<std::uint64_t>(nreaders);
    SION_CHECK(read_checkpoint(fs, world, restart, share, {}).ok());
  });
  return p;
}

// Scaled task count snapped to a multiple of the domain count (buddy
// requires equal failure domains).
int scaled_tasks(int n, double scale, int domains) {
  const int raw = std::max(domains, checked_trunc<int>(n * scale));
  return std::max(domains, raw / domains * domains);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const fs::SimConfig machine = scaled_machine(fs::JugeneConfig(), scale);

  print_header("buddy redundancy: replication cost and failure-domain "
               "recovery",
               "task-local checkpoints survive hardware loss only if the "
               "bytes exist elsewhere; mirroring every domain's chunks to a "
               "buddy domain bounds the write overhead near r x while an "
               "N->M restart stays possible through r-1 domain losses");

  Report report("buddy", "Buddy-redundancy checkpointing (ext::Buddy)");
  report.set_param("scale", scale);

  const int kDomains = 8;
  const std::uint64_t kChunk = 256 * kKiB;

  {
    const int ntasks = scaled_tasks(512, scale, kDomains);
    std::printf("\n--- replication sweep (%s tasks, %d domains, 256 KiB per "
                "task, collective x16) ---\n",
                human_tasks(ntasks).c_str(), kDomains);
    std::printf("%9s %13s %11s %13s\n", "replicas", "write(s)", "overhead",
                "restore(s)");
    Table& table = report.table(
        "replication_sweep",
        {"tasks", "replicas", "write_s", "overhead_x", "restore_s"});
    double base_write = 0.0;
    for (const int r : {1, 2, 3}) {
      const Point p = run_point(machine, ntasks, kDomains, r,
                                /*group_size=*/16, kChunk, /*lose=*/0, 1.0);
      if (r == 1) base_write = p.write_s;
      const double overhead = base_write > 0 ? p.write_s / base_write : 0.0;
      std::printf("%9d %13.3f %10.2fx %13.3f\n", r, p.write_s, overhead,
                  p.restore_s);
      table.row({ntasks, r, p.write_s, overhead, p.restore_s});
    }
  }

  {
    const int ntasks = scaled_tasks(512, scale, kDomains);
    std::printf("\n--- group-size sweep (r=2, one domain lost) ---\n");
    std::printf("%12s %13s %13s\n", "aggregation", "write(s)", "restore(s)");
    Table& table = report.table(
        "group_sweep", {"group_size", "write_s", "restore_s"});
    for (const int group : {0, 8, 32}) {
      const Point p = run_point(machine, ntasks, kDomains, /*replicas=*/2,
                                group, kChunk, /*lose=*/1, 1.0);
      const std::string label =
          group == 0 ? "plain" : strformat("collective x%d", group);
      std::printf("%12s %13.3f %13.3f\n", label.c_str(), p.write_s,
                  p.restore_s);
      table.row({group, p.write_s, p.restore_s});
    }
  }

  {
    const int ntasks = scaled_tasks(512, scale, kDomains);
    std::printf("\n--- failure sweep (r=3, collective x16): domains lost -> "
                "restore cost ---\n");
    std::printf("%12s %13s\n", "domains lost", "restore(s)");
    Table& table = report.table("loss_sweep", {"domains_lost", "restore_s"});
    for (const int lose : {0, 1, 2}) {
      const Point p = run_point(machine, ntasks, kDomains, /*replicas=*/3,
                                /*group_size=*/16, kChunk, lose, 1.0);
      std::printf("%12d %13.3f\n", lose, p.restore_s);
      table.row({lose, p.restore_s});
    }
  }

  {
    const int ntasks = scaled_tasks(512, scale, kDomains);
    std::printf("\n--- degraded-bandwidth sweep (r=2, one domain lost, "
                "surviving copies browned out) ---\n");
    std::printf("%10s %13s\n", "bandwidth", "restore(s)");
    Table& table = report.table(
        "degrade_sweep", {"bandwidth_factor", "restore_s"});
    for (const double factor : {1.0, 0.5, 0.25}) {
      const Point p = run_point(machine, ntasks, kDomains, /*replicas=*/2,
                                /*group_size=*/16, kChunk, /*lose=*/1,
                                factor);
      std::printf("%9.0f%% %13.3f\n", factor * 100.0, p.restore_s);
      table.row({factor, p.restore_s});
    }
  }

  return report.write_if_requested(opts);
}
