// Transparent compression on the checkpoint stream path: the Scalasca
// trace workload (paper section 5.2 — the paper reports zlib shrinking
// trace data "by a factor of five or more") written through the same
// CheckpointSession with and without ext/compress.h slz framing.
//
// Reported per mode: compression ratio (raw bytes / stream bytes on disk),
// application-level write and read-back bandwidth in decimal MB/s of *raw*
// payload moved. Hard gates (SION_CHECK): the trace payload must compress
// better than 1.5x, and compressed write throughput must stay within 20%
// of the uncompressed run — compression that slows the write path down
// defeats its purpose on a bandwidth-bound machine.
#include <cstring>

#include "bench_util.h"
#include "common/options.h"
#include "ext/compress.h"
#include "workloads/checkpoint.h"
#include "workloads/tracer.h"

namespace {

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::bench;      // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

fs::SimConfig g_machine;

struct Point {
  double write_s = 0.0;
  double read_s = 0.0;
};

std::vector<std::byte> trace_payload(int rank, std::uint64_t nevents) {
  return trace_serialize(trace_generate(rank, nevents, 0x5CA1A5CA));
}

Point run_point(bool compressed, int ntasks, std::uint64_t nevents) {
  fs::SimFs fs(g_machine);
  par::Engine engine(engine_config_for(g_machine));
  CheckpointSpec spec;
  spec.path = "trace.ckpt";
  spec.nfiles = std::max(1, ntasks / 16);
  if (compressed) spec.compression = ext::CompressionSpec{};

  Point p;
  p.write_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    const auto payload = trace_payload(world.rank(), nevents);
    SION_CHECK(write_checkpoint(fs, world, spec, fs::DataView(payload)).ok());
  });
  fs.drop_caches();
  p.read_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    const auto payload = trace_payload(world.rank(), nevents);
    std::vector<std::byte> back(payload.size());
    SION_CHECK(
        read_checkpoint(fs, world, spec, payload.size(), back).ok());
    SION_CHECK(back == payload)
        << "restored trace differs on rank " << world.rank();
  });
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const int ntasks = std::max(4, checked_trunc<int>(256 * scale));
  const auto nevents = static_cast<std::uint64_t>(
      std::max(2000.0, 100000.0 * scale));
  g_machine = scaled_machine(fs::JugeneConfig(), scale);

  print_header("Transparent compression: Scalasca trace checkpoint",
               "trace data compresses 5x+ with zlib (section 5.2); slz "
               "trades ratio for a dependency-free deterministic codec");

  Report report("compress", "slz frame compression on the checkpoint path");
  report.set_param("scale", scale);
  report.set_param("ntasks", ntasks);
  report.set_param("nevents_per_task", nevents);

  // The stream bytes that land on disk, summed serially over ranks: the
  // same deterministic payload and framing the timed runs push through the
  // write path, so the ratio is exact, not sampled.
  std::uint64_t raw_total = 0;
  std::uint64_t framed_total = 0;
  for (int r = 0; r < ntasks; ++r) {
    const auto payload = trace_payload(r, nevents);
    auto framed = ext::compress_stream(payload, {});
    SION_CHECK(framed.ok()) << framed.status().to_string();
    raw_total += payload.size();
    framed_total += framed.value().size();
  }
  const double ratio = framed_total > 0
                           ? static_cast<double>(raw_total) /
                                 static_cast<double>(framed_total)
                           : 0.0;

  const Point plain = run_point(false, ntasks, nevents);
  const Point z = run_point(true, ntasks, nevents);

  const double plain_write = mbps(raw_total, plain.write_s);
  const double plain_read = mbps(raw_total, plain.read_s);
  const double z_write = mbps(raw_total, z.write_s);
  const double z_read = mbps(raw_total, z.read_s);

  std::printf("%14s %8s %12s %8s %12s %12s\n", "mode", "#tasks", "raw bytes",
              "ratio", "write MB/s", "read MB/s");
  std::printf("%14s %8s %12s %8.2f %12.1f %12.1f\n", "uncompressed",
              human_tasks(ntasks).c_str(), format_bytes(raw_total).c_str(),
              1.0, plain_write, plain_read);
  std::printf("%14s %8s %12s %8.2f %12.1f %12.1f\n", "compressed",
              human_tasks(ntasks).c_str(), format_bytes(raw_total).c_str(),
              ratio, z_write, z_read);

  // The acceptance gates: a codec or framing change that drops the trace
  // ratio below 1.5x, or makes compressed writes >20% slower than raw
  // writes, fails the benchmark (and CI's bench-smoke with it).
  SION_CHECK(ratio > 1.5) << "trace compression ratio regressed: " << ratio;
  SION_CHECK(z_write >= 0.8 * plain_write)
      << "compressed write throughput " << z_write << " MB/s fell below 80% "
      << "of uncompressed " << plain_write << " MB/s";

  Table& table = report.table(
      "compress", {"mode", "ratio", "write_mbps", "read_mbps"});
  table.row({"uncompressed", 1.0, plain_write, plain_read});
  table.row({"compressed", ratio, z_write, z_read});
  return report.write_if_requested(opts);
}
