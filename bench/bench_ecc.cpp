// Reed-Solomon parity cost/benefit on the Jugene machine model: the
// storage-overhead x rebuild-time x degraded-read frontier of ext::Ecc.
// Sweeps the (k, m) code geometry, domains lost, restart scale, and the
// restore mode (heal = rebuild on disk first; degraded = decode lost files
// inline during the restart's own reads), then meets ext::Buddy at equal
// loss tolerance: both survive two lost domains, but parity pays ~m/k
// extra bytes where replication pays (r-1)x. The overhead claims are
// SION_CHECK-gated against fs.allocated_bytes(), not printed on trust.
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "core/metadata.h"
#include "ext/buddy.h"
#include "ext/ecc.h"
#include "fs/sim/fault.h"
#include "workloads/checkpoint.h"

namespace {

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::bench;      // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

struct Point {
  double write_s;
  double restore_s;
  std::uint64_t stored_bytes;  // fs.allocated_bytes() after the write
};

// Write one ECC checkpoint at `ntasks` over k data domains with m parity
// files (m == 0 writes the unprotected baseline), then lose the first
// `lose_data` data domains and `lose_parity` parity files and restore at
// `nreaders` tasks through the probe + heal-or-degraded-decode path.
Point run_ecc_point(const fs::SimConfig& machine, int ntasks, int nreaders,
                    int k, int m, bool heal_mode, int group_size,
                    std::uint64_t chunk_bytes, int lose_data,
                    int lose_parity) {
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));

  CheckpointSpec spec;
  spec.path = "ecc.ckpt";
  spec.strategy = IoStrategy::kSion;
  spec.nfiles = k;
  if (m > 0) {
    ext::EccConfig ecc;
    ecc.data_domains = k;
    ecc.parity_domains = m;
    // The stripe is also the zero-skip granule: the primary is sparse
    // (alignment holes between the preallocated chunk regions), and every
    // extent boundary that is not stripe-aligned materialises one extra
    // parity stripe. At smoke scales those boundary stripes are a visible
    // fraction of the payload, so the bench uses a fine stripe — byte
    // reconstruction is identical at any value.
    ecc.stripe_bytes = 16 * kKiB;
    ecc.restore_mode = heal_mode ? ext::EccConfig::Restore::kHeal
                                 : ext::EccConfig::Restore::kDegraded;
    spec.protection = ecc;
  }
  if (group_size > 0) {
    ext::CollectiveConfig aggregation;
    aggregation.group_size = group_size;
    aggregation.alignment = ext::CollectiveConfig::Alignment::kPacked;
    spec.collective = aggregation;
  }

  Point p{};
  p.write_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    SION_CHECK(write_checkpoint(fs, world, spec,
                                fs::DataView::fill(std::byte{'e'},
                                                   chunk_bytes))
                   .ok());
  });
  p.stored_bytes = fs.allocated_bytes();
  fs.drop_caches();  // the restart happens in a later job

  fs::FaultPlan plan;
  for (int d = 0; d < lose_data; ++d) {
    plan.lose(core::physical_file_name("ecc.ckpt", d, k));
  }
  for (int j = 0; j < lose_parity; ++j) {
    plan.lose(ext::Ecc::parity_name("ecc.ckpt", j));
  }
  if (!plan.faults.empty()) fs.arm_faults(plan);

  const std::uint64_t total =
      chunk_bytes * static_cast<std::uint64_t>(ntasks);
  CheckpointSpec restart = spec;
  restart.restart_ntasks = nreaders;
  p.restore_s = timed_run(engine, nreaders, [&](par::Comm& world) {
    const std::uint64_t share =
        total * static_cast<std::uint64_t>(world.rank() + 1) /
            static_cast<std::uint64_t>(nreaders) -
        total * static_cast<std::uint64_t>(world.rank()) /
            static_cast<std::uint64_t>(nreaders);
    SION_CHECK(read_checkpoint(fs, world, restart, share, {}).ok());
  });
  return p;
}

// The replication counterpart for the equal-loss-tolerance table: r copies
// over `domains` failure domains, the first `lose` domains gone entirely.
Point run_buddy_point(const fs::SimConfig& machine, int ntasks, int nreaders,
                      int domains, int replicas, int group_size,
                      std::uint64_t chunk_bytes, int lose) {
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));

  CheckpointSpec spec;
  spec.path = "buddy.ckpt";
  spec.strategy = IoStrategy::kSion;
  ext::BuddyConfig buddy;
  buddy.replicas = replicas;
  buddy.num_domains = domains;
  spec.protection = buddy;
  if (group_size > 0) {
    ext::CollectiveConfig aggregation;
    aggregation.group_size = group_size;
    aggregation.alignment = ext::CollectiveConfig::Alignment::kPacked;
    spec.collective = aggregation;
  }

  Point p{};
  p.write_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    SION_CHECK(write_checkpoint(fs, world, spec,
                                fs::DataView::fill(std::byte{'b'},
                                                   chunk_bytes))
                   .ok());
  });
  p.stored_bytes = fs.allocated_bytes();
  fs.drop_caches();

  fs::FaultPlan plan;
  for (int d = 0; d < lose; ++d) {
    plan.lose(core::physical_file_name("buddy.ckpt", d, domains));
    for (int r = 1; r < replicas; ++r) {
      plan.lose(core::physical_file_name(
          ext::Buddy::replica_name("buddy.ckpt", r), d, domains));
    }
  }
  if (!plan.faults.empty()) fs.arm_faults(plan);

  const std::uint64_t total =
      chunk_bytes * static_cast<std::uint64_t>(ntasks);
  CheckpointSpec restart = spec;
  restart.restart_ntasks = nreaders;
  p.restore_s = timed_run(engine, nreaders, [&](par::Comm& world) {
    const std::uint64_t share =
        total * static_cast<std::uint64_t>(world.rank() + 1) /
            static_cast<std::uint64_t>(nreaders) -
        total * static_cast<std::uint64_t>(world.rank()) /
            static_cast<std::uint64_t>(nreaders);
    SION_CHECK(read_checkpoint(fs, world, restart, share, {}).ok());
  });
  return p;
}

// Scaled task count snapped to a multiple of `align` (ECC and buddy both
// need the writers to divide evenly into their domains).
int scaled_tasks(int n, double scale, int align) {
  const int raw = std::max(align, checked_trunc<int>(n * scale));
  return std::max(align, raw / align * align);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const fs::SimConfig machine = scaled_machine(fs::JugeneConfig(), scale);

  print_header("erasure-coded checkpoints: parity cost and degraded-read "
               "recovery",
               "replicating every chunk pays (r-1)x storage for r-1 "
               "tolerated losses; a (k, m) Reed-Solomon code over the "
               "failure domains tolerates any m losses for ~m/k overhead, "
               "and a restart can decode the lost files inline instead of "
               "paying a rebuild pass first");

  Report report("ecc", "Erasure-coded checkpointing (ext::Ecc)");
  report.set_param("scale", scale);

  const std::uint64_t kChunk = 256 * kKiB;
  const int kGroup = 16;
  const int ntasks = scaled_tasks(512, scale, 8);
  const int nreaders = std::max(1, ntasks / 4);

  // Unprotected baseline at each k we sweep: the overhead gate divides by
  // the bytes the same multifile stores with no parity attached.
  std::vector<std::uint64_t> base_stored(9, 0);
  std::vector<double> base_write(9, 0.0);
  for (const int k : {4, 8}) {
    const Point p = run_ecc_point(machine, ntasks, nreaders, k, /*m=*/0,
                                  false, kGroup, kChunk, 0, 0);
    base_stored[static_cast<std::size_t>(k)] = p.stored_bytes;
    base_write[static_cast<std::size_t>(k)] = p.write_s;
  }

  {
    std::printf("\n--- code sweep (%s tasks, 256 KiB per task, collective "
                "x%d): storage overhead is SION_CHECK-gated at m/k + 5%% "
                "---\n",
                human_tasks(ntasks).c_str(), kGroup);
    std::printf("%7s %13s %11s %11s %13s\n", "(k,m)", "write(s)", "overhead",
                "gate", "restore(s)");
    Table& table = report.table(
        "code_sweep",
        {"k", "m", "write_s", "storage_overhead", "overhead_gate",
         "restore_s"});
    for (const auto& [k, m] :
         std::vector<std::pair<int, int>>{{4, 1}, {4, 2}, {8, 2}, {8, 3}}) {
      const Point p = run_ecc_point(machine, ntasks, nreaders, k, m, false,
                                    kGroup, kChunk, 0, 0);
      const auto base =
          static_cast<double>(base_stored[static_cast<std::size_t>(k)]);
      const double overhead = static_cast<double>(p.stored_bytes) / base - 1.0;
      const double gate = static_cast<double>(m) / k + 0.05;
      SION_CHECK(overhead <= gate)
          << "ECC(" << k << "," << m << ") stores " << p.stored_bytes
          << " bytes over a " << base << "-byte baseline: overhead "
          << overhead << " exceeds m/k + 5% = " << gate;
      std::printf("  (%d,%d) %13.3f %10.1f%% %10.1f%% %13.3f\n", k, m,
                  p.write_s, overhead * 100.0, gate * 100.0, p.restore_s);
      table.row({k, m, p.write_s, overhead, gate, p.restore_s});
    }
  }

  {
    std::printf("\n--- rebuild vs degraded (k=4, m=2): what a restart pays "
                "per lost domain ---\n");
    std::printf("%12s %17s %17s\n", "domains lost", "degraded(s)",
                "heal+restore(s)");
    Table& table = report.table(
        "rebuild_vs_degraded",
        {"domains_lost", "degraded_restore_s", "heal_restore_s"});
    for (const int lose : {0, 1, 2}) {
      const Point degraded = run_ecc_point(machine, ntasks, nreaders, 4, 2,
                                           /*heal_mode=*/false, kGroup,
                                           kChunk, lose, 0);
      const Point heal = run_ecc_point(machine, ntasks, nreaders, 4, 2,
                                       /*heal_mode=*/true, kGroup, kChunk,
                                       lose, 0);
      std::printf("%12d %17.3f %17.3f\n", lose, degraded.restore_s,
                  heal.restore_s);
      table.row({lose, degraded.restore_s, heal.restore_s});
    }
  }

  {
    std::printf("\n--- degraded-read scale (k=4, m=2, one domain lost): "
                "restart width vs decode cost ---\n");
    std::printf("%9s %13s\n", "readers", "restore(s)");
    Table& table = report.table("degraded_scale", {"readers", "restore_s"});
    for (const int readers :
         {std::max(1, ntasks / 4), ntasks, 2 * ntasks}) {
      const Point p = run_ecc_point(machine, ntasks, readers, 4, 2,
                                    /*heal_mode=*/false, kGroup, kChunk,
                                    /*lose_data=*/1, 0);
      std::printf("%9s %13.3f\n", human_tasks(readers).c_str(), p.restore_s);
      table.row({readers, p.restore_s});
    }
  }

  {
    // Equal loss tolerance: ECC(4, 2) and Buddy r=3 both survive any two
    // lost failure domains. Parity must get there strictly cheaper in
    // stored bytes than replication's (r-1)x — that inequality is the
    // reason ext::Ecc exists, so it is a gate, not a printout.
    std::printf("\n--- equal loss tolerance (2 lost domains survived): "
                "parity vs replication ---\n");
    std::printf("%12s %13s %11s %13s\n", "scheme", "write(s)", "overhead",
                "restore(s)");
    Table& table = report.table(
        "vs_buddy",
        {"scheme", "tolerated_losses", "write_s", "storage_overhead",
         "restore_s"});
    const Point ecc = run_ecc_point(machine, ntasks, nreaders, 4, 2,
                                    /*heal_mode=*/false, kGroup, kChunk,
                                    /*lose_data=*/2, 0);
    const Point buddy = run_buddy_point(machine, ntasks, nreaders,
                                        /*domains=*/4, /*replicas=*/3,
                                        kGroup, kChunk, /*lose=*/2);
    const auto base =
        static_cast<double>(base_stored[static_cast<std::size_t>(4)]);
    const double ecc_overhead =
        static_cast<double>(ecc.stored_bytes) / base - 1.0;
    const double buddy_overhead =
        static_cast<double>(buddy.stored_bytes) / base - 1.0;
    SION_CHECK(ecc_overhead <= buddy_overhead)
        << "ECC(4,2) overhead " << ecc_overhead
        << " is not below replication r=3 overhead " << buddy_overhead
        << " at equal loss tolerance";
    std::printf("%12s %13.3f %10.1f%% %13.3f\n", "ecc(4,2)", ecc.write_s,
                ecc_overhead * 100.0, ecc.restore_s);
    std::printf("%12s %13.3f %10.1f%% %13.3f\n", "buddy r=3", buddy.write_s,
                buddy_overhead * 100.0, buddy.restore_s);
    table.row({"ecc(4,2)", 2, ecc.write_s, ecc_overhead, ecc.restore_s});
    table.row({"buddy r=3", 2, buddy.write_s, buddy_overhead,
               buddy.restore_s});
  }

  return report.write_if_requested(opts);
}
