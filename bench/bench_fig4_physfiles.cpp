// Figure 4: "Bandwidth when using multiple physical files".
//
// (a) Jugene, 64 Ki tasks, 1 TB total, 1..128 physical files: bandwidth
//     rises from ~2.3 GB/s (one file, per-inode limit) and saturates near
//     the 6 GB/s system peak between 8 and 32 files.
// (b) Jaguar, 2 Ki tasks, 1 TB, 1..64 files, with default striping
//     (4 OSTs, 1 MiB) vs optimized striping (64 OSTs, 8 MiB): default rises
//     steadily to ~32 files; optimized is good from 2 files on and always
//     superior.
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "core/api.h"

namespace {

using namespace sion;          // NOLINT(google-build-using-namespace)
using namespace sion::bench;   // NOLINT(google-build-using-namespace)

struct Point {
  double write_mbps;
  double read_mbps;
};

Point run_point(const fs::SimConfig& machine, int ntasks,
                std::uint64_t total_bytes, int nfiles,
                const char* stripe_mode) {
  fs::SimFs fs(machine);
  SION_CHECK(fs.mkdir("bench").ok());
  if (std::string(stripe_mode) == "optimized") {
    fs.set_dir_stripe("bench", 64, 8 * kMiB);
  }
  par::Engine engine(engine_config_for(machine));
  const std::uint64_t per_task = total_bytes / static_cast<std::uint64_t>(ntasks);

  // Bandwidth is measured barrier-to-barrier around the data phase only,
  // like the paper's experiments (file creation cost is Figure 3's topic).
  double t_write = 0;
  engine.run(ntasks, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "bench/multi.sion";
    spec.chunksize = per_task;
    spec.nfiles = nfiles;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    SION_CHECK(sion.ok()) << sion.status().to_string();
    world.barrier();
    const double t0 = par::this_task()->now();
    SION_CHECK(sion.value()->write(fs::DataView::fill(std::byte{'b'}, per_task)).ok());
    world.barrier();
    if (world.rank() == 0) t_write = par::this_task()->now() - t0;
    SION_CHECK(sion.value()->close().ok());
  });

  fs.drop_caches();  // measure the file system, not the client cache
  double t_read = 0;
  engine.run(ntasks, [&](par::Comm& world) {
    auto sion = core::SionParFile::open_read(fs, world, "bench/multi.sion");
    SION_CHECK(sion.ok()) << sion.status().to_string();
    world.barrier();
    const double t0 = par::this_task()->now();
    SION_CHECK(sion.value()->read_skip(per_task).ok());
    world.barrier();
    if (world.rank() == 0) t_read = par::this_task()->now() - t0;
    SION_CHECK(sion.value()->close().ok());
  });

  return Point{mbps(total_bytes, t_write), mbps(total_bytes, t_read)};
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);

  print_header("Figure 4: bandwidth vs number of physical files",
               "GPFS and Lustre both reward distributing a multifile over "
               "several physical files");

  Report report("fig4_physfiles", "Bandwidth vs number of physical files");
  report.set_param("scale", scale);

  {
    const int ntasks = std::max(1, checked_trunc<int>(65536 * scale));
    const std::uint64_t total =
        static_cast<std::uint64_t>(static_cast<double>(kTiB) * scale);
    std::printf("\n--- Figure 4(a) Jugene (64k tasks, 1 TB, peak 6000 MB/s) ---\n");
    std::printf("%8s %14s %14s\n", "#files", "write MB/s", "read MB/s");
    Table& table =
        report.table("jugene", {"nfiles", "write_mbps", "read_mbps"});
    for (int nfiles : {1, 2, 4, 8, 16, 32, 64, 128}) {
      if (nfiles > ntasks) break;  // a reduced --scale run caps the sweep
      const Point p =
          run_point(scaled_machine(fs::JugeneConfig(), scale), ntasks, total, nfiles, "default");
      std::printf("%8d %14.1f %14.1f\n", nfiles, p.write_mbps, p.read_mbps);
      table.row({nfiles, p.write_mbps, p.read_mbps});
    }
  }

  {
    const int ntasks = std::max(1, checked_trunc<int>(2048 * scale));
    const std::uint64_t total =
        static_cast<std::uint64_t>(static_cast<double>(kTiB) * scale);
    std::printf("\n--- Figure 4(b) Jaguar (2k tasks, 1 TB, peak 40000 MB/s) ---\n");
    std::printf("%8s %14s %14s %16s %16s\n", "#files", "write dflt", "read dflt",
                "write optimized", "read optimized");
    Table& table = report.table(
        "jaguar", {"nfiles", "write_default_mbps", "read_default_mbps",
                   "write_optimized_mbps", "read_optimized_mbps"});
    for (int nfiles : {1, 2, 4, 8, 16, 32, 64}) {
      if (nfiles > ntasks) break;  // a reduced --scale run caps the sweep
      const Point dflt =
          run_point(scaled_machine(fs::JaguarConfig(), scale), ntasks, total, nfiles, "default");
      const Point opt =
          run_point(scaled_machine(fs::JaguarConfig(), scale), ntasks, total, nfiles, "optimized");
      std::printf("%8d %14.1f %14.1f %16.1f %16.1f\n", nfiles, dflt.write_mbps,
                  dflt.read_mbps, opt.write_mbps, opt.read_mbps);
      table.row({nfiles, dflt.write_mbps, dflt.read_mbps, opt.write_mbps,
                 opt.read_mbps});
    }
  }
  return report.write_if_requested(opts);
}
