// Host-performance scaling sweep: the fig3 SION open/close path from 1Ki up
// to 16Mi tasks, reporting BOTH clocks per point — the virtual makespan (the
// paper's number, bit-stable across commits and shard counts) and the host
// wall seconds the simulation itself took (the number the engine work moves,
// and the one CI budgets along with peak RSS).
//
// Flags beyond the usual --scale/--json:
//   --shards=N      partition the fiber engine over N host threads
//                   (virtual results are bit-identical for every N)
//   --max-tasks=N   extend the sweep past 64Ki up to N tasks (the ROADMAP
//                   million-task points: 128Ki..16Mi, doubling)
//   --min-tasks=N   skip sweep points below N tasks, so CI can run a single
//                   large point (e.g. --min-tasks=1048576 --max-tasks=1048576)
//                   without the cumulative peak-RSS high-water of the ramp
//   --stack-bytes=B per-fiber stack; 0 (default) picks 48KiB up to 64Ki
//                   tasks and a compact 16KiB above, so a 1Mi-task point
//                   keeps its resident set bounded by touched stack pages
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "core/api.h"

namespace {

using namespace sion;          // NOLINT(google-build-using-namespace)
using namespace sion::bench;   // NOLINT(google-build-using-namespace)

constexpr std::size_t kCompactStackBytes = 16 * 1024;
constexpr int kCompactStackThreshold = 65536;

struct PointResult {
  double create_virtual_s = 0.0;   // task-local create phase (virtual)
  double sion_virtual_s = 0.0;     // SION open_write + close (virtual)
  double wall_s = 0.0;             // host time for the whole point
};

PointResult run_point(const fs::SimConfig& machine, int ntasks,
                      int sion_nfiles, int shards, std::size_t stack_bytes) {
  const WallTimer wall;
  fs::SimFs fs(machine);
  if (stack_bytes == 0) {
    stack_bytes = ntasks <= kCompactStackThreshold ? 48 * 1024
                                                   : kCompactStackBytes;
  }
  par::Engine engine(engine_config_for(machine, stack_bytes, shards));

  PointResult r;
  r.create_virtual_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    auto f = fs.create(strformat("data.%06d", world.rank()));
    SION_CHECK(f.ok()) << f.status().to_string();
  });

  r.sion_virtual_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "scale.sion";
    spec.chunksize = 64 * kKiB;
    spec.nfiles = sion_nfiles;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    SION_CHECK(sion.ok()) << sion.status().to_string();
    SION_CHECK(sion.value()->close().ok());
  });

  r.wall_s = wall.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const int nfiles = checked_narrow<int>(opts.get_u64("nfiles", 32));
  const int shards = checked_narrow<int>(opts.get_u64("shards", 1));
  const std::uint64_t max_tasks = opts.get_u64("max-tasks", 65536);
  const std::uint64_t min_tasks = opts.get_u64("min-tasks", 0);
  const auto stack_bytes =
      checked_narrow<std::size_t>(opts.get_u64("stack-bytes", 0));

  print_header("Host-performance scaling: fig3 open/close path, 1Ki..16Mi",
               "virtual times reproduce Fig. 3's SION-create seconds; wall "
               "seconds measure the simulator itself");

  Report report("scale", "Host wall-clock scaling of the fig3 open/close path");
  report.set_param("scale", scale);
  report.set_param("nfiles", nfiles);
  report.set_param("shards", shards);
  report.set_param("max_tasks", max_tasks);
  report.set_param("min_tasks", min_tasks);
  Table& table = report.table(
      "jugene", {"tasks", "create_files_virtual_s", "sion_create_virtual_s",
                 "wall_s"});

  std::printf("%8s %24s %22s %10s\n", "#tasks", "create files(virt s)",
              "SION create(virt s)", "wall(s)");
  const fs::SimConfig machine = fs::JugeneConfig();
  std::vector<std::uint64_t> sweep = {1024, 2048, 4096, 8192, 16384, 32768,
                                      65536};
  for (std::uint64_t n = 131072; n <= std::uint64_t{16} * 1024 * 1024;
       n *= 2) {
    sweep.push_back(n);  // the million-task extension, gated by --max-tasks
  }
  for (const std::uint64_t raw_n : sweep) {
    if (raw_n > max_tasks) break;
    if (raw_n < min_tasks) continue;
    const int n = std::max(
        1, checked_trunc<int>(static_cast<double>(raw_n) * scale));
    const PointResult r = run_point(machine, n, std::min(nfiles, n), shards,
                                    stack_bytes);
    std::printf("%8s %24.2f %22.3f %10.3f\n",
                format_tasks(raw_n).c_str(), r.create_virtual_s / scale,
                r.sion_virtual_s / scale, r.wall_s);
    table.row({raw_n, r.create_virtual_s / scale, r.sion_virtual_s / scale,
               r.wall_s});
  }
  return report.write_if_requested(opts);
}
