// Host-performance scaling sweep: the fig3 SION open/close path from 1Ki to
// 64Ki tasks, reporting BOTH clocks per point — the virtual makespan (the
// paper's number, bit-stable across commits) and the host wall seconds the
// simulation itself took (the number this PR's hot-path overhaul moves, and
// the one CI budgets).
//
// A full 64Ki-task point must stay interactive: the acceptance bar for the
// overhaul is well under two minutes on CI hardware, and the trajectory in
// BENCH_scale.json is how a regression gets caught.
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "core/api.h"

namespace {

using namespace sion;          // NOLINT(google-build-using-namespace)
using namespace sion::bench;   // NOLINT(google-build-using-namespace)

struct PointResult {
  double create_virtual_s = 0.0;   // task-local create phase (virtual)
  double sion_virtual_s = 0.0;     // SION open_write + close (virtual)
  double wall_s = 0.0;             // host time for the whole point
};

PointResult run_point(const fs::SimConfig& machine, int ntasks,
                      int sion_nfiles) {
  const WallTimer wall;
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));

  PointResult r;
  r.create_virtual_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    auto f = fs.create(strformat("data.%06d", world.rank()));
    SION_CHECK(f.ok()) << f.status().to_string();
  });

  r.sion_virtual_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "scale.sion";
    spec.chunksize = 64 * kKiB;
    spec.nfiles = sion_nfiles;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    SION_CHECK(sion.ok()) << sion.status().to_string();
    SION_CHECK(sion.value()->close().ok());
  });

  r.wall_s = wall.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const int nfiles = static_cast<int>(opts.get_u64("nfiles", 32));

  print_header("Host-performance scaling: fig3 open/close path, 1Ki..64Ki",
               "virtual times reproduce Fig. 3's SION-create seconds; wall "
               "seconds measure the simulator itself");

  Report report("scale", "Host wall-clock scaling of the fig3 open/close path");
  report.set_param("scale", scale);
  report.set_param("nfiles", nfiles);
  Table& table = report.table(
      "jugene", {"tasks", "create_files_virtual_s", "sion_create_virtual_s",
                 "wall_s"});

  std::printf("%8s %24s %22s %10s\n", "#tasks", "create files(virt s)",
              "SION create(virt s)", "wall(s)");
  const fs::SimConfig machine = fs::JugeneConfig();
  for (const int raw_n :
       {1024, 2048, 4096, 8192, 16384, 32768, 65536}) {
    const int n = std::max(1, static_cast<int>(raw_n * scale));
    const PointResult r =
        run_point(machine, n, std::min(nfiles, n));
    std::printf("%8s %24.2f %22.3f %10.3f\n", human_tasks(raw_n).c_str(),
                r.create_virtual_s / scale, r.sion_virtual_s / scale,
                r.wall_s);
    table.row({raw_n, r.create_virtual_s / scale, r.sion_virtual_s / scale,
               r.wall_s});
  }
  return report.write_if_requested(opts);
}
