// Collective write aggregation (ext::Collective) vs the direct per-task
// path, on the Jugene machine model. The paper's section-6 roadmap names
// coalescing/collective I/O as the next step beyond per-task chunks: GPFS
// moves at least one 2 MiB file-system block per writing task, so small
// per-task checkpoints pay an enormous write amplification that collector
// ranks with packed chunks avoid. Aggregation must *win* for small chunks
// and *lose* once per-member payloads saturate the collector's own
// injection link — both ends of the tradeoff are swept here.
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "workloads/checkpoint.h"

namespace {

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::bench;      // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

// The machine model: Jugene plus the client-token open refinement, so the
// reduced metadata/open pressure of collector-only opens is visible.
fs::SimConfig machine_config(double scale) {
  fs::SimConfig machine = scaled_machine(fs::JugeneConfig(), scale);
  machine.client_open_service = 0.03e-3;  // first token fetch per client
  return machine;
}

struct Point {
  double write_s;
  double read_s;
};

// The core loop: one checkpoint written and restored by every task, either
// directly (each task writes its own chunk) or aggregated through
// collectors. tests/sim_timing_test.cpp asserts this loop is run-to-run
// deterministic in virtual time.
Point run_point(const fs::SimConfig& machine, int ntasks,
                std::uint64_t chunk_bytes, bool collective, int group_size) {
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));

  CheckpointSpec spec;
  spec.path = "coll.ckpt";
  spec.strategy = IoStrategy::kSion;
  if (collective) {
    ext::CollectiveConfig aggregation;
    aggregation.group_size = group_size;
    aggregation.alignment = ext::CollectiveConfig::Alignment::kPacked;
    aggregation.packing_granule = 4 * kKiB;
    spec.collective = aggregation;
  }

  Point p{};
  p.write_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    SION_CHECK(write_checkpoint(
                   fs, world, spec,
                   fs::DataView::fill(std::byte{'c'}, chunk_bytes))
                   .ok());
  });
  fs.drop_caches();  // restart happens in a later job
  p.read_s = timed_run(engine, ntasks, [&](par::Comm& world) {
    SION_CHECK(read_checkpoint(fs, world, spec, chunk_bytes, {}).ok());
  });
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const fs::SimConfig machine = machine_config(scale);

  print_header("Collective aggregation: checkpoint makespan vs direct I/O",
               "collectors with packed chunks beat per-task writes for "
               "small chunk sizes (GPFS full-block amplification), and "
               "lose once the collector's injection link saturates");

  Report report("collective", "Write aggregation vs direct per-task I/O");
  report.set_param("scale", scale);

  {
    const int ntasks = std::max(8, checked_trunc<int>(1024 * scale));
    const int group = 16;
    std::printf("\n--- chunk-size sweep (%s tasks, groups of %d) ---\n",
                human_tasks(ntasks).c_str(), group);
    std::printf("%10s %13s %13s %13s %13s %9s\n", "chunk", "direct wr(s)",
                "direct rd(s)", "coll wr(s)", "coll rd(s)", "speedup");
    Table& table = report.table(
        "chunk_sweep", {"chunk_bytes", "direct_write_s", "direct_read_s",
                        "collective_write_s", "collective_read_s",
                        "write_speedup"});
    for (const std::uint64_t chunk :
         {4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB}) {
      const Point direct = run_point(machine, ntasks, chunk, false, group);
      const Point coll = run_point(machine, ntasks, chunk, true, group);
      const double speedup = direct.write_s / coll.write_s;
      std::printf("%10s %13.3f %13.3f %13.3f %13.3f %8.2fx\n",
                  format_bytes(chunk).c_str(), direct.write_s, direct.read_s,
                  coll.write_s, coll.read_s, speedup);
      table.row({chunk, direct.write_s, direct.read_s, coll.write_s,
                 coll.read_s, speedup});
    }
  }

  {
    const int ntasks = std::max(8, checked_trunc<int>(1024 * scale));
    const std::uint64_t chunk = 16 * kKiB;
    const Point direct = run_point(machine, ntasks, chunk, false, 1);
    std::printf("\n--- group-size sweep (%s tasks, 16 KiB chunks; direct "
                "write %.3f s) ---\n",
                human_tasks(ntasks).c_str(), direct.write_s);
    std::printf("%10s %13s %13s %9s\n", "group", "coll wr(s)", "coll rd(s)",
                "speedup");
    Table& table = report.table(
        "group_sweep", {"group_size", "collective_write_s",
                        "collective_read_s", "write_speedup"});
    for (const int group : {2, 4, 8, 16, 32, 64}) {
      if (group > ntasks) break;
      const Point coll = run_point(machine, ntasks, chunk, true, group);
      const double speedup = direct.write_s / coll.write_s;
      std::printf("%10d %13.3f %13.3f %8.2fx\n", group, coll.write_s,
                  coll.read_s, speedup);
      table.row({group, coll.write_s, coll.read_s, speedup});
    }
  }

  {
    const std::uint64_t chunk = 16 * kKiB;
    const int group = 16;
    std::printf("\n--- task-count sweep (16 KiB chunks, groups of %d) ---\n",
                group);
    std::printf("%10s %13s %13s %9s\n", "#tasks", "direct wr(s)",
                "coll wr(s)", "speedup");
    Table& table = report.table(
        "task_sweep",
        {"tasks", "direct_write_s", "collective_write_s", "write_speedup"});
    for (const int raw_n : {256, 512, 1024, 2048}) {
      const int n = std::max(8, checked_trunc<int>(raw_n * scale));
      const Point direct = run_point(machine, n, chunk, false, group);
      const Point coll = run_point(machine, n, chunk, true, group);
      const double speedup = direct.write_s / coll.write_s;
      std::printf("%10s %13.3f %13.3f %8.2fx\n", human_tasks(n).c_str(),
                  direct.write_s, coll.write_s, speedup);
      // Record the task count actually run, so a reduced --scale trajectory
      // never pairs full-scale labels with scaled timings.
      table.row({n, direct.write_s, coll.write_s, speedup});
    }
  }

  return report.write_if_requested(opts);
}
