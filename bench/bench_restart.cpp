// N->M restart cost (ext::Remap) on the Jugene machine model: a checkpoint
// written by N tasks is restored onto M tasks, so redistribution — disk
// reads by the stream readers plus the alltoall-shaped reshuffle over the
// network — becomes a measurable axis next to the plain same-scale restore.
// The paper's global-view metadata (sections 3.2.3/3.3) is what makes the
// N logical streams addressable from any M; this benchmark prices it.
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "workloads/checkpoint.h"

namespace {

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::bench;      // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

struct Point {
  double write_s;
  double restore_s;
};

// Write one checkpoint at `nwriters` (optionally through collective
// aggregation), then restore it at `nreaders` through the remap path.
// Every reader asks for its even share of the concatenated payload.
Point run_point(const fs::SimConfig& machine, int nwriters, int nreaders,
                std::uint64_t chunk_bytes, bool collective) {
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));

  CheckpointSpec spec;
  spec.path = "remap.ckpt";
  spec.strategy = IoStrategy::kSion;
  if (collective) {
    ext::CollectiveConfig aggregation;
    aggregation.group_size = 16;
    aggregation.alignment = ext::CollectiveConfig::Alignment::kPacked;
    spec.collective = aggregation;
  }

  Point p{};
  p.write_s = timed_run(engine, nwriters, [&](par::Comm& world) {
    SION_CHECK(write_checkpoint(
                   fs, world, spec,
                   fs::DataView::fill(std::byte{'r'}, chunk_bytes))
                   .ok());
  });
  fs.drop_caches();  // restart happens in a later job

  const std::uint64_t total =
      chunk_bytes * static_cast<std::uint64_t>(nwriters);
  CheckpointSpec restart = spec;
  restart.restart_ntasks = nreaders;
  p.restore_s = timed_run(engine, nreaders, [&](par::Comm& world) {
    const std::uint64_t share =
        total * static_cast<std::uint64_t>(world.rank() + 1) /
            static_cast<std::uint64_t>(nreaders) -
        total * static_cast<std::uint64_t>(world.rank()) /
            static_cast<std::uint64_t>(nreaders);
    SION_CHECK(read_checkpoint(fs, world, restart, share, {}).ok());
  });
  return p;
}

int scaled(int n, double scale) {
  return std::max(1, checked_trunc<int>(n * scale));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const fs::SimConfig machine = scaled_machine(fs::JugeneConfig(), scale);

  print_header("N->M restart: redistribution cost of restarting at a "
               "different scale",
               "the multifile's global-view metadata makes every rank's "
               "stream addressable, so a checkpoint written at N restores "
               "at any M; the price is reading N streams with M tasks and "
               "reshuffling byte ranges over the network");

  Report report("restart", "N->M checkpoint restart via ext::Remap");
  report.set_param("scale", scale);

  {
    const int nwriters = scaled(1024, scale);
    const std::uint64_t chunk = 256 * kKiB;
    std::printf("\n--- restart-scale sweep (written at %s tasks, 256 KiB "
                "per task) ---\n",
                human_tasks(nwriters).c_str());
    std::printf("%10s %10s %13s %13s %13s\n", "written-at", "restart-at",
                "write(s)", "restore(s)", "restore MB/s");
    Table& table = report.table(
        "m_sweep", {"writers", "readers", "chunk_bytes", "write_s",
                    "restore_s", "restore_mbps"});
    for (const int raw_m : {1, 64, 256, 1024, 4096}) {
      const int nreaders = scaled(raw_m, raw_m == 1 ? 1.0 : scale);
      const Point p = run_point(machine, nwriters, nreaders, chunk, false);
      const double bw = mbps(
          chunk * static_cast<std::uint64_t>(nwriters), p.restore_s);
      std::printf("%10s %10s %13.3f %13.3f %13.1f\n",
                  human_tasks(nwriters).c_str(),
                  human_tasks(nreaders).c_str(), p.write_s, p.restore_s, bw);
      table.row({nwriters, nreaders, chunk, p.write_s, p.restore_s, bw});
    }
  }

  {
    const int nwriters = scaled(1024, scale);
    const int nreaders = scaled(256, scale);
    std::printf("\n--- chunk-size sweep (%s -> %s tasks) ---\n",
                human_tasks(nwriters).c_str(), human_tasks(nreaders).c_str());
    std::printf("%10s %13s %13s %13s\n", "chunk", "write(s)", "restore(s)",
                "restore MB/s");
    Table& table = report.table(
        "chunk_sweep",
        {"chunk_bytes", "write_s", "restore_s", "restore_mbps"});
    for (const std::uint64_t chunk :
         {16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB}) {
      const Point p = run_point(machine, nwriters, nreaders, chunk, false);
      const double bw = mbps(
          chunk * static_cast<std::uint64_t>(nwriters), p.restore_s);
      std::printf("%10s %13.3f %13.3f %13.1f\n", format_bytes(chunk).c_str(),
                  p.write_s, p.restore_s, bw);
      table.row({chunk, p.write_s, p.restore_s, bw});
    }
  }

  {
    // Remap must not care how the file was written: the same N->M restore
    // over a plain multifile and a collectively written kPacked one.
    const int nwriters = scaled(1024, scale);
    const int nreaders = scaled(96, scale);
    const std::uint64_t chunk = 64 * kKiB;
    std::printf("\n--- writer-mode sweep (%s -> %s tasks, 64 KiB per task) "
                "---\n",
                human_tasks(nwriters).c_str(), human_tasks(nreaders).c_str());
    std::printf("%12s %13s %13s\n", "writer", "write(s)", "restore(s)");
    Table& table = report.table(
        "writer_sweep", {"writer", "write_s", "restore_s"});
    for (const bool collective : {false, true}) {
      const Point p = run_point(machine, nwriters, nreaders, chunk,
                                collective);
      const char* label = collective ? "coll/packed" : "plain";
      std::printf("%12s %13.3f %13.3f\n", label, p.write_s, p.restore_s);
      table.row({label, p.write_s, p.restore_s});
    }
  }

  return report.write_if_requested(opts);
}
