// Asynchronous burst-buffer staging under failures: is checkpointing through
// a node-local fast tier actually worth it, and at what checkpoint interval?
//
// Method. The discrete-event machine model measures the three costs that
// matter per configuration: the time write_async steals from compute (the
// fast-tier absorb, or the full parallel-tier write when synchronous), the
// snapshot-to-durable drain latency, and the price of a real recovery — a
// seeded FaultPlan loses the in-flight staged files mid-drain and the
// restart restores the last durable checkpoint through the session
// manifest. A long workload (hours of virtual compute) is then composed
// from those measured costs under a seeded exponential failure process:
// checkpoints every `interval`, double-buffer stalls and drain-link
// serialisation modelled, every failure rolling back to the newest durable
// snapshot and paying the measured restore. Swept against the Young/Daly
// optimum interval T_opt = sqrt(2 * delta * MTBF), across drain-link
// bandwidths, and with buddy protection fanned out by the drain.
//
// The acceptance claim of the staging subsystem is checked hard at the end:
// at its Young/Daly-optimal interval the staged run must beat the
// synchronous baseline's effective utilization — otherwise the background
// drain is not actually buying compute/drain overlap.
#include <cmath>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/strings.h"
#include "ext/buddy.h"
#include "ext/staging.h"
#include "fs/sim/fault.h"
#include "workloads/checkpoint.h"
#include "workloads/checkpoint_session.h"

namespace {

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::bench;      // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

constexpr int kDomains = 8;  // buddy failure domains (ntasks % 8 == 0)

struct Scenario {
  bool staged = false;
  bool buddy = false;
  double drain_bandwidth = 1.0e9;  // bytes/s per burst-buffer node
};

// The per-checkpoint costs the machine model measures for one scenario.
struct Costs {
  double block_s = 0.0;    // time write_async steals from the application
  double drain_s = 0.0;    // snapshot -> durable on the parallel tier
  double restore_s = 0.0;  // recovery after losing the in-flight checkpoint
};

fs::SimConfig staged_machine(double scale, double drain_bandwidth) {
  fs::SimConfig machine = scaled_machine(fs::JugeneConfig(), scale);
  machine.burst_buffer.tasks_per_node = 4;
  machine.burst_buffer.node_bandwidth = 8.0e9;
  machine.burst_buffer.drain_bandwidth = drain_bandwidth;
  return machine;
}

CheckpointSpec scenario_spec(const Scenario& s, fs::FileSystem* fast_tier) {
  CheckpointSpec spec;
  spec.path = "stage.ckpt";
  spec.strategy = IoStrategy::kSion;
  if (s.buddy) {
    ext::BuddyConfig buddy;
    buddy.replicas = 2;
    buddy.num_domains = kDomains;
    spec.protection = buddy;
  }
  if (s.staged) {
    ext::StagingConfig staging;
    staging.fast_tier = fast_tier;
    spec.staging = staging;
  }
  return spec;
}

// Measure block/drain on a short checkpoint loop, then the restore price on
// a second file system where a seeded FaultPlan kills the in-flight staged
// files mid-drain (for the synchronous scenario the "recovery" is a plain
// restart read of the last checkpoint).
Costs measure_costs(const Scenario& s, int ntasks, std::uint64_t bytes,
                    double scale) {
  const fs::SimConfig machine = staged_machine(scale, s.drain_bandwidth);
  Costs costs;
  {
    fs::SimFs pfs(machine);
    std::unique_ptr<fs::SimFs> bb;
    if (s.staged) {
      bb = std::make_unique<fs::SimFs>(
          fs::BurstBufferTierConfig(machine, ntasks));
    }
    const CheckpointSpec spec = scenario_spec(s, bb.get());
    par::Engine engine(engine_config_for(machine));
    engine.run(ntasks, [&](par::Comm& world) {
      auto session = CheckpointSession::open(pfs, world, spec);
      SION_CHECK(session.ok()) << session.status().to_string();
      double block_sum = 0.0;
      for (std::uint64_t k = 0; k < 2; ++k) {
        const double t0 = par::this_task()->now();
        SION_CHECK(session.value()
                       ->write_async(fs::DataView::fill(std::byte{'s'}, bytes))
                       .ok());
        block_sum += par::this_task()->now() - t0;
        // Long enough that the k=1 absorb never stalls on the k=0 drain:
        // the measured block is the pure cost write_async charges compute.
        par::this_task()->compute(2.0);
      }
      SION_CHECK(session.value()->close().ok());
      if (world.rank() == 0) {
        const auto& records = session.value()->history();
        costs.block_s = block_sum / 2.0;
        double drain_sum = 0.0;
        for (const auto& rec : records) {
          drain_sum += rec.complete_vtime - rec.snapshot_vtime;
        }
        costs.drain_s = drain_sum / static_cast<double>(records.size());
      }
    });
  }
  {
    fs::SimFs pfs(machine);
    std::unique_ptr<fs::SimFs> bb;
    if (s.staged) {
      bb = std::make_unique<fs::SimFs>(
          fs::BurstBufferTierConfig(machine, ntasks));
    }
    const CheckpointSpec spec = scenario_spec(s, bb.get());
    par::Engine engine(engine_config_for(machine));
    engine.run(ntasks, [&](par::Comm& world) {
      auto session = CheckpointSession::open(pfs, world, spec);
      SION_CHECK(session.ok()) << session.status().to_string();
      const auto payload = fs::DataView::fill(std::byte{'s'}, bytes);
      auto first = session.value()->write_async(payload);
      SION_CHECK(first.ok());
      SION_CHECK(session.value()->wait(first.value()).ok());
      if (s.staged) {
        // The failure scenario: checkpoint 1 is absorbed but still
        // draining when its staged slot files vanish from the fast tier.
        SION_CHECK(session.value()->write_async(payload).ok());
        if (world.rank() == 0) {
          fs::FaultPlan plan;
          plan.seed = 0xBB;
          plan.lose("bb/*.slot1*");
          bb->arm_faults(plan);
        }
        world.barrier();
        SION_CHECK(!session.value()->drain().ok());
      }
      SION_CHECK(session.value()->close().ok());
    });
    pfs.drop_caches();  // the restart is a later job with cold clients
    costs.restore_s = timed_run(engine, ntasks, [&](par::Comm& world) {
      auto restored =
          CheckpointSession::restore_latest(pfs, world, spec, bytes, {});
      SION_CHECK(restored.ok()) << restored.status().to_string();
      SION_CHECK(restored.value() == 0);
    });
  }
  return costs;
}

// Long-workload composition under a seeded exponential failure process.
// Work accrues only while computing; every checkpoint steals `block_s`
// (plus a stall when both staging buffers are still in flight), drains
// serially on the background link, and becomes durable `drain_s` after its
// snapshot; a failure rolls back to the newest durable snapshot and pays
// `restore_s`. Failures arriving after the last work segment are out of
// scope (the job is done; only the final drain remains).
struct LongRun {
  double makespan_s = 0.0;
  double utilization = 0.0;
  int checkpoints = 0;
  int failures = 0;
  double work_lost_s = 0.0;
};

LongRun simulate_long_run(double work_s, double interval_s, const Costs& c,
                          double mtbf_s, std::uint64_t seed) {
  Rng rng(seed);
  auto draw_gap = [&] { return -mtbf_s * std::log(1.0 - rng.next_double()); };
  const double drain_tail = std::max(0.0, c.drain_s - c.block_s);

  LongRun out;
  double t = 0.0;
  double done = 0.0;          // work completed since the last rollback
  double durable_work = 0.0;  // work captured by the newest durable ckpt
  double drain_busy = 0.0;    // background drain link busy-until
  double last_drain_end = 0.0;
  double next_fail = draw_gap();
  std::deque<std::pair<double, double>> inflight;  // (work, durable_at)
  auto retire = [&](double now_t) {
    while (!inflight.empty() && inflight.front().second <= now_t) {
      durable_work = inflight.front().first;
      inflight.pop_front();
    }
  };

  while (done < work_s) {
    const double seg = std::min(interval_s, work_s - done);
    const double snapshot_t = t + seg;
    retire(snapshot_t);
    // Double buffering: with two checkpoints still in flight the absorb
    // stalls until the older one is durable (its slot is being reused).
    const double stall =
        inflight.size() >= 2 ? std::max(0.0, inflight.front().second -
                                                 snapshot_t)
                             : 0.0;
    const double block_end = snapshot_t + stall + c.block_s;
    if (next_fail < block_end) {
      const double work_at_fail =
          done + std::min(seg, std::max(0.0, next_fail - t));
      retire(next_fail);
      out.work_lost_s += work_at_fail - durable_work;
      ++out.failures;
      done = durable_work;
      t = next_fail + c.restore_s;
      inflight.clear();
      drain_busy = t;
      next_fail = t + draw_gap();
      continue;
    }
    done += seg;
    const double drain_start = std::max(block_end, drain_busy);
    const double drain_end = drain_start + drain_tail;
    drain_busy = drain_end;
    last_drain_end = drain_end;
    inflight.push_back({done, drain_end});
    ++out.checkpoints;
    t = block_end;
  }
  out.makespan_s = std::max(t, last_drain_end);
  out.utilization = work_s / out.makespan_s;
  return out;
}

double young_daly_interval(const Costs& c, double mtbf_s) {
  return std::sqrt(2.0 * std::max(c.block_s, 1.0e-9) * mtbf_s);
}

int scaled_tasks(int n, double scale) {
  const int raw = std::max(kDomains, checked_trunc<int>(n * scale));
  return std::max(kDomains, raw / kDomains * kDomains);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const double mtbf_s = opts.get_double("mtbf", 3600.0);
  const double work_s = opts.get_double("work", 6.0 * 3600.0);
  const std::uint64_t seed = opts.get_u64("seed", 0x57A6ED);
  const int ntasks = scaled_tasks(256, scale);
  const std::uint64_t bytes = 4 * kMiB;
  const double base_drain = 1.0e9;

  print_header(
      "burst-buffer staging: checkpoint interval vs Young/Daly under "
      "failures",
      "a node-local fast tier absorbs checkpoints at memory-like speed and "
      "drains in the background; compute/drain overlap shrinks the "
      "effective checkpoint cost delta, which moves the optimal interval "
      "sqrt(2*delta*MTBF) down and the achievable utilization up");

  Report report("staging", "Asynchronous burst-buffer staging (ext::Staging)");
  report.set_param("scale", scale);
  report.set_param("tasks", ntasks);
  report.set_param("bytes_per_task", bytes);
  report.set_param("mtbf_s", mtbf_s);
  report.set_param("work_s", work_s);

  const Scenario sync_scenario{/*staged=*/false, /*buddy=*/false, base_drain};
  const Scenario staged_scenario{/*staged=*/true, /*buddy=*/false, base_drain};
  const Costs sync_costs = measure_costs(sync_scenario, ntasks, bytes, scale);
  const Costs staged_costs =
      measure_costs(staged_scenario, ntasks, bytes, scale);
  const double t_opt_sync = young_daly_interval(sync_costs, mtbf_s);
  const double t_opt_staged = young_daly_interval(staged_costs, mtbf_s);
  report.set_param("young_daly_opt_sync_s", t_opt_sync);
  report.set_param("young_daly_opt_staged_s", t_opt_staged);

  std::printf("\nmeasured per-checkpoint costs (%s tasks, 4 MiB per task):\n",
              human_tasks(ntasks).c_str());
  std::printf("%12s %12s %12s %12s %14s\n", "mode", "block(s)", "drain(s)",
              "restore(s)", "T_opt(s)");
  std::printf("%12s %12.4f %12.4f %12.4f %14.1f\n", "sync",
              sync_costs.block_s, sync_costs.drain_s, sync_costs.restore_s,
              t_opt_sync);
  std::printf("%12s %12.4f %12.4f %12.4f %14.1f\n", "staged",
              staged_costs.block_s, staged_costs.drain_s,
              staged_costs.restore_s, t_opt_staged);

  double util_sync_opt = 0.0;
  double util_staged_opt = 0.0;
  {
    std::printf("\n--- checkpoint-interval sweep (x T_opt per mode, MTBF "
                "%.0f s, %.0f h of work) ---\n",
                mtbf_s, work_s / 3600.0);
    std::printf("%8s %10s %12s %8s %8s %13s %15s\n", "mode", "interval",
                "interval(s)", "ckpts", "fails", "utilization",
                "lost/fail(s)");
    Table& table = report.table(
        "interval_sweep",
        {"mode", "interval_factor", "interval_s", "checkpoints", "failures",
         "utilization", "work_lost_per_failure_s"});
    struct Mode {
      const char* name;
      const Costs* costs;
      double t_opt;
    };
    const Mode modes[] = {{"sync", &sync_costs, t_opt_sync},
                          {"staged", &staged_costs, t_opt_staged}};
    for (const Mode& mode : modes) {
      for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const double interval = mode.t_opt * factor;
        const LongRun run =
            simulate_long_run(work_s, interval, *mode.costs, mtbf_s, seed);
        const double lost_per_fail =
            run.failures > 0 ? run.work_lost_s / run.failures : 0.0;
        if (factor == 1.0) {
          (mode.costs == &sync_costs ? util_sync_opt : util_staged_opt) =
              run.utilization;
        }
        std::printf("%8s %9.2fx %12.1f %8d %8d %12.1f%% %15.1f\n", mode.name,
                    factor, interval, run.checkpoints, run.failures,
                    run.utilization * 100.0, lost_per_fail);
        table.row({mode.name, factor, interval, run.checkpoints, run.failures,
                   run.utilization, lost_per_fail});
      }
    }
  }

  {
    std::printf("\n--- drain-bandwidth sweep (staged, interval = T_opt) "
                "---\n");
    std::printf("%12s %12s %12s %12s %13s\n", "drain/node", "block(s)",
                "drain(s)", "T_opt(s)", "utilization");
    Table& table = report.table(
        "drain_bandwidth_sweep",
        {"drain_bandwidth_mbps", "block_s", "drain_s", "t_opt_s",
         "utilization"});
    for (const double factor : {0.25, 1.0, 4.0}) {
      Scenario s = staged_scenario;
      s.drain_bandwidth = base_drain * factor;
      const Costs costs = measure_costs(s, ntasks, bytes, scale);
      const double t_opt = young_daly_interval(costs, mtbf_s);
      const LongRun run =
          simulate_long_run(work_s, t_opt, costs, mtbf_s, seed);
      std::printf("%8.0f MB/s %12.4f %12.4f %12.1f %12.1f%%\n",
                  s.drain_bandwidth / 1.0e6, costs.block_s, costs.drain_s,
                  t_opt, run.utilization * 100.0);
      table.row({s.drain_bandwidth / 1.0e6, costs.block_s, costs.drain_s,
                 t_opt, run.utilization});
    }
  }

  {
    std::printf("\n--- protection sweep (staged, interval = T_opt): drain "
                "fans replicas out to the parallel tier ---\n");
    std::printf("%12s %12s %12s %12s %13s\n", "protection", "block(s)",
                "drain(s)", "restore(s)", "utilization");
    Table& table = report.table(
        "protection_sweep",
        {"protection", "block_s", "drain_s", "restore_s", "utilization"});
    for (const bool buddy : {false, true}) {
      Scenario s = staged_scenario;
      s.buddy = buddy;
      const Costs costs = measure_costs(s, ntasks, bytes, scale);
      const double t_opt = young_daly_interval(costs, mtbf_s);
      const LongRun run =
          simulate_long_run(work_s, t_opt, costs, mtbf_s, seed);
      const char* label = buddy ? "buddy_r2" : "none";
      std::printf("%12s %12.4f %12.4f %12.4f %12.1f%%\n", label,
                  costs.block_s, costs.drain_s, costs.restore_s,
                  run.utilization * 100.0);
      table.row({label, costs.block_s, costs.drain_s, costs.restore_s,
                 run.utilization});
    }
  }

  // The acceptance gate: staging must actually buy utilization at the
  // optimal interval, or the overlap machinery is not working.
  std::printf("\nutilization at T_opt: staged %.2f%% vs sync %.2f%%\n",
              util_staged_opt * 100.0, util_sync_opt * 100.0);
  SION_CHECK(util_staged_opt > util_sync_opt)
      << "staged utilization does not beat the synchronous baseline";
  report.set_param("utilization_sync_opt", util_sync_opt);
  report.set_param("utilization_staged_opt", util_staged_opt);

  return report.write_if_requested(opts);
}
