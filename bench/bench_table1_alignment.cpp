// Table 1: "Bandwidth to a SIONlib multifile with 16 underlying physical
// files on Jugene with and without block alignment".
//
// Paper: 32 Ki tasks, 256 GB, 16 files; configuring SIONlib with the true
// 2 MiB GPFS block size vs a wrong 16 KiB block size (chunks then share
// file-system blocks between tasks) degrades writes 2.53x (5381.8 ->
// 2125.8 MB/s) and reads 1.78x (4630.6 -> 2603.0 MB/s).
#include "bench_util.h"
#include "common/options.h"
#include "core/api.h"

namespace {

using namespace sion;          // NOLINT(google-build-using-namespace)
fs::SimConfig g_machine;          // NOLINT(google-build-using-namespace)
using namespace sion::bench;   // NOLINT(google-build-using-namespace)

struct Point {
  double write_mbps;
  double read_mbps;
};

Point run_point(int ntasks, std::uint64_t total_bytes,
                std::uint64_t configured_blksize) {
  const fs::SimConfig machine = g_machine;  // real fs block: 2 MiB
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));
  const std::uint64_t per_task =
      total_bytes / static_cast<std::uint64_t>(ntasks);

  const double t_write = timed_run(engine, ntasks, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "align.sion";
    spec.chunksize = per_task;
    spec.nfiles = 16;
    spec.fsblksize = configured_blksize;  // the knob Table 1 varies
    auto sion = core::SionParFile::open_write(fs, world, spec);
    SION_CHECK(sion.ok()) << sion.status().to_string();
    world.barrier();
    // Write in 2 MiB pieces, as a checkpointing application would.
    std::uint64_t done = 0;
    while (done < per_task) {
      const std::uint64_t piece = std::min<std::uint64_t>(2 * kMiB, per_task - done);
      SION_CHECK(sion.value()->write(fs::DataView::fill(std::byte{'a'}, piece)).ok());
      done += piece;
    }
    SION_CHECK(sion.value()->close().ok());
  });

  const double t_read = timed_run(engine, ntasks, [&](par::Comm& world) {
    auto sion = core::SionParFile::open_read(fs, world, "align.sion");
    SION_CHECK(sion.ok()) << sion.status().to_string();
    world.barrier();
    std::uint64_t done = 0;
    while (done < per_task) {
      const std::uint64_t piece = std::min<std::uint64_t>(2 * kMiB, per_task - done);
      SION_CHECK(sion.value()->read_skip(piece).ok());
      done += piece;
    }
    SION_CHECK(sion.value()->close().ok());
  });

  return Point{mbps(total_bytes, t_write), mbps(total_bytes, t_read)};
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const int ntasks = std::max(16, checked_trunc<int>(32768 * scale));
  const std::uint64_t total = static_cast<std::uint64_t>(
      static_cast<double>(256) * static_cast<double>(kGiB) * scale);
  g_machine = scaled_machine(fs::JugeneConfig(), scale);

  print_header("Table 1: effect of file-system block alignment (Jugene)",
               "write 5381.8 -> 2125.8 MB/s (2.53x), read 4630.6 -> 2603.0 "
               "MB/s (1.78x) when chunks share 2 MiB GPFS blocks");

  // Constructed before the sweep so host.wall_seconds covers it.
  Report report("table1_alignment",
                "Effect of file-system block alignment on Jugene");
  report.set_param("scale", scale);
  report.set_param("ntasks", ntasks);

  const Point aligned = run_point(ntasks, total, 2 * kMiB);
  const Point unaligned = run_point(ntasks, total, 16 * kKiB);

  std::printf("%8s %10s %10s %12s %12s\n", "#tasks", "data", "blksize",
              "write MB/s", "read MB/s");
  std::printf("%8s %10s %10s %12.1f %12.1f\n", human_tasks(ntasks).c_str(),
              format_bytes(total).c_str(), "2 MiB", aligned.write_mbps,
              aligned.read_mbps);
  std::printf("%8s %10s %10s %12.1f %12.1f\n", human_tasks(ntasks).c_str(),
              format_bytes(total).c_str(), "16 KiB", unaligned.write_mbps,
              unaligned.read_mbps);
  std::printf("degradation: write %.2fx, read %.2fx (paper: 2.53x, 1.78x)\n",
              aligned.write_mbps / unaligned.write_mbps,
              aligned.read_mbps / unaligned.read_mbps);

  Table& table = report.table(
      "alignment", {"blksize", "write_mbps", "read_mbps"});
  table.row({"2 MiB", aligned.write_mbps, aligned.read_mbps});
  table.row({"16 KiB", unaligned.write_mbps, unaligned.read_mbps});
  return report.write_if_requested(opts);
}
