// Ablation studies for design choices called out in DESIGN.md. These go
// beyond the paper's own tables:
//
//  (1) Recovery-frame overhead: the robustness extension (section 6 future
//      work) patches a 64-byte frame on every write — what does it cost?
//  (2) Staging-buffer size for the single-file-sequential baseline: the
//      "multiple gather/scatter operations" penalty as a function of buffer
//      size (why MP2C's original scheme cannot be rescued by tuning).
//  (3) Chunk-size sensitivity: the block-alignment rule rounds requests up;
//      what do misaligned chunk requests waste in time and space?
#include <vector>

#include "bench_util.h"
#include "baseline/single_file_seq.h"
#include "common/options.h"
#include "core/api.h"

namespace {

using namespace sion;          // NOLINT(google-build-using-namespace)
using namespace sion::bench;   // NOLINT(google-build-using-namespace)

void ablation_frames(double scale, Table& table) {
  std::printf("\n--- Ablation 1: recovery-frame overhead (Jugene, 1k tasks) ---\n");
  std::printf("%10s %14s %14s %12s\n", "frames", "write time(s)", "fs writes",
              "overhead");
  const fs::SimConfig machine = fs::JugeneConfig();
  const int n = std::max(4, checked_trunc<int>(1024 * scale));
  const std::uint64_t per_task = 16 * kMiB;
  double base_time = 0;
  for (const bool frames : {false, true}) {
    fs::SimFs fs(machine);
    par::Engine engine(engine_config_for(machine));
    const double t = timed_run(engine, n, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = "fr.sion";
      spec.chunksize = 2 * kMiB;
      spec.chunk_frames = frames;
      auto sion = core::SionParFile::open_write(fs, world, spec);
      SION_CHECK(sion.ok()) << sion.status().to_string();
      world.barrier();
      // Many small-ish writes: the worst case for per-write frame patching.
      for (int i = 0; i < 16; ++i) {
        SION_CHECK(sion.value()
                       ->write(fs::DataView::fill(std::byte{'f'}, per_task / 16))
                       .ok());
      }
      SION_CHECK(sion.value()->close().ok());
    });
    if (!frames) base_time = t;
    std::printf("%10s %14.2f %14llu %11.1f%%\n", frames ? "on" : "off", t,
                static_cast<unsigned long long>(fs.counters().writes),
                (t / base_time - 1.0) * 100.0);
    table.row({frames ? "on" : "off", t, fs.counters().writes,
               (t / base_time - 1.0) * 100.0});
  }
}

void ablation_staging(double scale, Table& table) {
  std::printf("\n--- Ablation 2: single-file-seq staging buffer (Jugene, 256 tasks, 4 GiB) ---\n");
  std::printf("%12s %14s\n", "staging", "write time(s)");
  const fs::SimConfig machine = fs::JugeneConfig();
  const int n = std::max(4, checked_trunc<int>(256 * scale));
  const std::uint64_t per_task = 16 * kMiB;
  for (const std::uint64_t staging :
       {1 * kMiB, 8 * kMiB, 64 * kMiB, 512 * kMiB}) {
    fs::SimFs fs(machine);
    par::Engine engine(engine_config_for(machine));
    const double t = timed_run(engine, n, [&](par::Comm& world) {
      baseline::SingleFileSeqOptions options;
      options.staging_bytes = staging;
      SION_CHECK(baseline::write_single_file_seq(
                     fs, world, "seq.dat",
                     fs::DataView::fill(std::byte{'s'}, per_task), options)
                     .ok());
    });
    std::printf("%12s %14.2f\n", format_bytes(staging).c_str(), t);
    table.row({staging, t});
  }
  std::printf("(larger staging buffers cannot beat the single client link;\n"
              " the scheme is structurally serial)\n");
}

void ablation_chunk_request(double scale, Table& table) {
  std::printf("\n--- Ablation 3: chunk request vs 2 MiB block alignment (Jugene, 4k tasks) ---\n");
  std::printf("%16s %16s %18s\n", "request", "allocated/task", "write time(s)");
  const fs::SimConfig machine = fs::JugeneConfig();
  const int n = std::max(4, checked_trunc<int>(4096 * scale));
  for (const std::uint64_t request :
       {64 * kKiB, 2 * kMiB - 1, 2 * kMiB, 2 * kMiB + 1, 7 * kMiB}) {
    fs::SimFs fs(machine);
    par::Engine engine(engine_config_for(machine));
    // Same payload for every row: alignment rounds even a 64 KiB request up
    // to a full 2 MiB chunk, so 2 MiB always fits.
    const std::uint64_t payload = 2 * kMiB;
    const double t = timed_run(engine, n, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = "ck.sion";
      spec.chunksize = request;
      spec.nfiles = 16;
      auto sion = core::SionParFile::open_write(fs, world, spec);
      SION_CHECK(sion.ok()) << sion.status().to_string();
      SION_CHECK(sion.value()
                     ->write(fs::DataView::fill(std::byte{'c'}, payload))
                     .ok());
      SION_CHECK(sion.value()->close().ok());
    });
    const std::uint64_t aligned = round_up(request, 2 * kMiB);
    std::printf("%16s %16s %18.2f\n", format_bytes(request).c_str(),
                format_bytes(aligned).c_str(), t);
    table.row({request, aligned, t});
  }
  std::printf("(alignment rounds every request up to whole file-system\n"
              " blocks; unused space stays sparse and costs no transfer)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  print_header("Ablations: design-choice studies beyond the paper's tables",
               "frame overhead / staging size / chunk alignment");

  Report report("ablation", "Design-choice ablations beyond the paper");
  report.set_param("scale", scale);
  ablation_frames(scale, report.table("frames", {"frames", "write_s",
                                                 "fs_writes", "overhead_pct"}));
  ablation_staging(scale,
                   report.table("staging", {"staging_bytes", "write_s"}));
  ablation_chunk_request(
      scale, report.table("chunk_request",
                          {"request_bytes", "allocated_bytes", "write_s"}));
  return report.write_if_requested(opts);
}
