// Wall-clock micro-benchmarks of the library itself on the real (POSIX)
// file system, using google-benchmark: multifile open/close cost, write and
// read throughput through the chunk-splitting paths, the serial tools, and
// the slz codec. These complement the virtual-time paper reproductions —
// here real time is measured, so numbers vary by host.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/slz.h"
#include "fs/posix_fs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "tools/defrag.h"
#include "tools/dump.h"

namespace {

using namespace sion;  // NOLINT(google-build-using-namespace)

std::string bench_dir() {
  static const std::string dir = [] {
    auto path = std::filesystem::temp_directory_path() /
                ("sion_bench_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
    return path.string();
  }();
  return dir;
}

void BM_ParOpenClose(benchmark::State& state) {
  const int ntasks = static_cast<int>(state.range(0));
  fs::PosixFs pfs(64 * kKiB);
  par::Engine engine;
  const std::string name = bench_dir() + "/open.sion";
  for (auto _ : state) {
    engine.run(ntasks, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = name;
      spec.chunksize = 4096;
      auto sion = core::SionParFile::open_write(pfs, world, spec);
      if (sion.ok()) (void)sion.value()->close();
    });
  }
  state.SetItemsProcessed(state.iterations() * ntasks);
}
BENCHMARK(BM_ParOpenClose)->Arg(4)->Arg(32)->Arg(256);

void BM_SionWriteThroughput(benchmark::State& state) {
  const std::uint64_t piece = static_cast<std::uint64_t>(state.range(0));
  fs::PosixFs pfs(64 * kKiB);
  par::Engine engine;
  const std::string name = bench_dir() + "/wr.sion";
  std::vector<std::byte> data(piece);
  Rng rng(1);
  rng.fill_bytes(data);
  for (auto _ : state) {
    engine.run(4, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = name;
      spec.chunksize = 256 * kKiB;
      auto sion = core::SionParFile::open_write(pfs, world, spec);
      if (!sion.ok()) return;
      for (int i = 0; i < 16; ++i) {
        (void)sion.value()->write(fs::DataView(data));
      }
      (void)sion.value()->close();
    });
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * 4 * 16 * piece));
}
BENCHMARK(BM_SionWriteThroughput)->Arg(4 * kKiB)->Arg(64 * kKiB)->Arg(1 * kMiB);

void BM_SionReadThroughput(benchmark::State& state) {
  const std::uint64_t per_task = 4 * kMiB;
  fs::PosixFs pfs(64 * kKiB);
  par::Engine engine;
  const std::string name = bench_dir() + "/rd.sion";
  engine.run(4, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = name;
    spec.chunksize = 256 * kKiB;
    auto sion = core::SionParFile::open_write(pfs, world, spec);
    if (!sion.ok()) return;
    (void)sion.value()->write(fs::DataView::fill(std::byte{'r'}, per_task));
    (void)sion.value()->close();
  });
  std::vector<std::byte> buf(per_task);
  for (auto _ : state) {
    engine.run(4, [&](par::Comm& world) {
      auto sion = core::SionParFile::open_read(pfs, world, name);
      if (!sion.ok()) return;
      (void)sion.value()->read(buf);
      (void)sion.value()->close();
    });
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * 4 * per_task));
}
BENCHMARK(BM_SionReadThroughput);

void BM_DumpTool(benchmark::State& state) {
  fs::PosixFs pfs(64 * kKiB);
  par::Engine engine;
  const std::string name = bench_dir() + "/dump.sion";
  engine.run(64, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = name;
    spec.chunksize = 4096;
    auto sion = core::SionParFile::open_write(pfs, world, spec);
    if (!sion.ok()) return;
    (void)sion.value()->write(fs::DataView::fill(std::byte{'d'}, 1000));
    (void)sion.value()->close();
  });
  for (auto _ : state) {
    auto text = tools::dump_multifile(pfs, name);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_DumpTool);

void BM_DefragTool(benchmark::State& state) {
  fs::PosixFs pfs(64 * kKiB);
  par::Engine engine;
  const std::string name = bench_dir() + "/df.sion";
  engine.run(16, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = name;
    spec.chunksize = 64 * kKiB;
    auto sion = core::SionParFile::open_write(pfs, world, spec);
    if (!sion.ok()) return;
    (void)sion.value()->write(
        fs::DataView::fill(std::byte{'x'}, 150 * kKiB));  // 3 blocks
    (void)sion.value()->close();
  });
  int i = 0;
  for (auto _ : state) {
    const std::string out = bench_dir() + "/df_out" + std::to_string(i++);
    auto st = tools::defrag_multifile(pfs, name, out);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_DefragTool);

void BM_SlzCompress(benchmark::State& state) {
  // Mixed-entropy input, roughly trace-like.
  std::vector<std::byte> input(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = (i % 16 < 12) ? static_cast<std::byte>(i / 64 % 251)
                             : static_cast<std::byte>(rng.next_below(256));
  }
  for (auto _ : state) {
    auto out = ext::slz_compress(input);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_SlzCompress)->Arg(64 * kKiB)->Arg(1 * kMiB);

void BM_SlzDecompress(benchmark::State& state) {
  std::vector<std::byte> input(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = (i % 16 < 12) ? static_cast<std::byte>(i / 64 % 251)
                             : static_cast<std::byte>(rng.next_below(256));
  }
  const auto compressed = ext::slz_compress(input);
  for (auto _ : state) {
    auto out = ext::slz_decompress(compressed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_SlzDecompress)->Arg(64 * kKiB)->Arg(1 * kMiB);

class Cleanup {
 public:
  ~Cleanup() {
    std::error_code ec;
    std::filesystem::remove_all(bench_dir(), ec);
  }
} cleanup;

}  // namespace

BENCHMARK_MAIN();
