// Figure 3: "Performance of creating new and opening existing task-local
// files in parallel in the same directory" on Jugene (a) and Jaguar (b),
// compared with creating one SIONlib multifile.
//
// Paper endpoints: 64 Ki creates ~6 min and 64 Ki opens ~1 min on Jugene;
// 12 Ki creates ~5 min and ~20 s opens on Jaguar; SION create <3 s (Jugene)
// and <10 s (Jaguar).
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "core/api.h"

namespace {

using namespace sion;          // NOLINT(google-build-using-namespace)
using namespace sion::bench;   // NOLINT(google-build-using-namespace)

void run_machine(const char* label, Table& table,
                 const fs::SimConfig& machine,
                 const std::vector<int>& task_counts, int sion_nfiles,
                 double scale) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%8s %16s %20s %18s %10s\n", "#tasks", "create files(s)",
              "open existing(s)", "SION create(s)", "wall(s)");
  for (int raw_n : task_counts) {
    const int n = std::max(1, checked_trunc<int>(raw_n * scale));
    const WallTimer wall;
    fs::SimFs fs(machine);
    par::Engine engine(engine_config_for(machine));

    // (1) multiple-file-parallel: every task creates its own file.
    const double t_create = timed_run(engine, n, [&](par::Comm& world) {
      auto f = fs.create(strformat("data.%06d", world.rank()));
      SION_CHECK(f.ok()) << f.status().to_string();
    });

    // (2) fresh job later: open the files that already exist.
    fs.drop_caches();
    const double t_open = timed_run(engine, n, [&](par::Comm& world) {
      auto f = fs.open_rw(strformat("data.%06d", world.rank()));
      SION_CHECK(f.ok()) << f.status().to_string();
    });

    // (3) SIONlib: one collective create of a multifile.
    const double t_sion = timed_run(engine, n, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = "multi.sion";
      spec.chunksize = 64 * kKiB;
      spec.nfiles = sion_nfiles;
      auto sion = core::SionParFile::open_write(fs, world, spec);
      SION_CHECK(sion.ok()) << sion.status().to_string();
      SION_CHECK(sion.value()->close().ok());
    });

    const double wall_s = wall.seconds();
    std::printf("%8s %16.1f %20.1f %18.2f %10.3f\n", human_tasks(raw_n).c_str(),
                t_create / scale, t_open / scale, t_sion / scale, wall_s);
    table.row({raw_n, t_create / scale, t_open / scale, t_sion / scale,
               wall_s});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  // --scale=0.25 runs a quarter of each task count and extrapolates
  // linearly (the metadata model is linear in task count); 1.0 reproduces
  // the full configurations.
  const double scale = opts.get_double("scale", 1.0);

  print_header("Figure 3: parallel creation/open of task-local files",
               "64Ki creates >5 min on Jugene, 12Ki creates ~5 min on "
               "Jaguar; opens ~8x/15x cheaper; SION create takes seconds");

  Report report("fig3_create",
                "Parallel creation/open of task-local files vs SION");
  report.set_param("scale", scale);
  const std::vector<std::string> columns = {"tasks", "create_files_s",
                                            "open_existing_s", "sion_create_s",
                                            "wall_s"};
  run_machine("Figure 3(a) Jugene (GPFS)", report.table("jugene", columns),
              fs::JugeneConfig(), {4096, 8192, 16384, 32768, 65536},
              /*sion_nfiles=*/1, scale);
  run_machine("Figure 3(b) Jaguar (Lustre)", report.table("jaguar", columns),
              fs::JaguarConfig(), {256, 1024, 2048, 4096, 8192, 12288},
              /*sion_nfiles=*/1, scale);
  return report.write_if_requested(opts);
}
