// Table 2: "Scalasca trace measurement activation time with and without
// SIONlib for a 32 K core run of SMG2000".
//
// Paper: 32 Ki tasks, aggregate trace size 1470 GB, 16 underlying physical
// files. Activation (creating the trace files and initialising tracing) was
// 369.1 s with task-local files and 28.1 s with SIONlib (13.1x, with the
// pure file creation consuming ~1 s); write bandwidth was 2153 vs
// 2194 MB/s — slightly *improved* by SIONlib.
//
// Deviation note: our write-bandwidth rows are higher in absolute terms
// because we model the trace flush as a dedicated I/O phase, whereas in the
// paper trace writes were interleaved with the running application; the
// comparison that matters — task-local vs SIONlib nearly equal, SIONlib
// slightly ahead — is preserved. See EXPERIMENTS.md.
#include "bench_util.h"
#include "common/options.h"
#include "workloads/tracer.h"

namespace {

using namespace sion;          // NOLINT(google-build-using-namespace)
fs::SimConfig g_machine;             // NOLINT(google-build-using-namespace)
using namespace sion::bench;      // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

struct Point {
  double activation_s;
  double write_mbps;
};

Point run_point(TraceBackend backend, int ntasks, std::uint64_t total_bytes,
                int nfiles) {
  const fs::SimConfig machine = g_machine;
  fs::SimFs fs(machine);
  par::Engine engine(engine_config_for(machine));
  const std::uint64_t per_task =
      total_bytes / static_cast<std::uint64_t>(ntasks);

  TracerSpec spec;
  spec.path = backend == TraceBackend::kSion ? "trace.sion" : "trace";
  spec.backend = backend;
  spec.nfiles = nfiles;
  spec.buffer_bytes = per_task;
  spec.synthetic_bytes = per_task;
  // Measurement-system init beyond file creation ("the pure file creation
  // consuming roughly 1 s" of the 28.1 s SIONlib activation).
  spec.init_seconds = 26.0;

  // Both phases run inside one engine invocation; barriers delimit them so
  // the phase times are the max over all tasks, like an MPI benchmark.
  Point p{};
  engine.run(ntasks, [&](par::Comm& world) {
    world.barrier();
    const double t0 = par::this_task()->now();
    auto tracer = Tracer::open(fs, world, spec);
    SION_CHECK(tracer.ok()) << tracer.status().to_string();
    world.barrier();
    const double t1 = par::this_task()->now();
    SION_CHECK(tracer.value()->flush_and_close().ok());
    world.barrier();
    const double t2 = par::this_task()->now();
    if (world.rank() == 0) {
      p.activation_s = t1 - t0;
      p.write_mbps = mbps(total_bytes, t2 - t1);
    }
  });
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);
  const int ntasks = std::max(16, checked_trunc<int>(32768 * scale));
  const auto total = static_cast<std::uint64_t>(
      1470.0 * static_cast<double>(kGiB) * scale);
  g_machine = scaled_machine(fs::JugeneConfig(), scale);

  print_header("Table 2: Scalasca trace activation time (32k-core SMG2000)",
               "activation 369.1 s (task-local) vs 28.1 s (SIONlib) = "
               "13.1x; write bandwidth 2153 vs 2194 MB/s");

  // Constructed before the sweep so host.wall_seconds covers it.
  Report report("table2_scalasca", "Scalasca trace measurement activation");
  report.set_param("scale", scale);
  report.set_param("ntasks", ntasks);

  const Point tl = run_point(TraceBackend::kTaskLocal, ntasks, total, 16);
  const Point sion = run_point(TraceBackend::kSion, ntasks, total, 16);

  std::printf("%12s %8s %12s %16s %12s\n", "I/O type", "#tasks", "trace size",
              "activation (s)", "write MB/s");
  // File-creation cost scales with task count; the fixed init cost does
  // not, so only the creation part is rescaled when running reduced.
  const auto rescale = [&](double activation) {
    return (activation - 26.0) / scale + 26.0;
  };
  std::printf("%12s %8s %12s %16.1f %12.1f\n", "Task-local",
              human_tasks(ntasks).c_str(), format_bytes(total).c_str(),
              rescale(tl.activation_s), tl.write_mbps);
  std::printf("%12s %8s %12s %16.1f %12.1f\n", "SIONlib",
              human_tasks(ntasks).c_str(), format_bytes(total).c_str(),
              rescale(sion.activation_s), sion.write_mbps);
  std::printf("activation improvement: %.1fx (paper: 13.1x)\n",
              rescale(tl.activation_s) / rescale(sion.activation_s));

  Table& table = report.table(
      "activation", {"io_type", "activation_s", "write_mbps"});
  table.row({"task-local", rescale(tl.activation_s), tl.write_mbps});
  table.row({"sionlib", rescale(sion.activation_s), sion.write_mbps});
  return report.write_if_requested(opts);
}
