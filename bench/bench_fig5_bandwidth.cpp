// Figure 5: "Bandwidth of SIONlib I/O with 32 underlying physical files in
// comparison to parallel I/O to physical task-local files".
//
// (a) Jugene, 1k..64k tasks, 1 TB multifile: both schemes saturate the
//     ~6 GB/s system from ~8k tasks, SIONlib marginally better.
// (b) Jaguar, 128..12k tasks, 2 TB: SION writes mostly ahead; reads climb
//     beyond the 40 GB/s file-system maximum at large task counts because
//     clients re-read freshly written data from their caches.
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "core/api.h"

namespace {

using namespace sion;          // NOLINT(google-build-using-namespace)
using namespace sion::bench;   // NOLINT(google-build-using-namespace)

struct Point {
  double sion_write;
  double sion_read;
  double tl_write;
  double tl_read;
};

Point run_point(const fs::SimConfig& machine, int ntasks,
                std::uint64_t total_bytes) {
  const std::uint64_t per_task =
      total_bytes / static_cast<std::uint64_t>(ntasks);
  Point p{};
  // Bandwidth phases measured barrier-to-barrier (file creation/open cost
  // is Figure 3's topic, not Figure 5's).
  {
    fs::SimFs fs(machine);
    par::Engine engine(engine_config_for(machine));
    engine.run(ntasks, [&](par::Comm& world) {
      core::ParOpenSpec spec;
      spec.filename = "bw.sion";
      spec.chunksize = per_task;
      spec.nfiles = std::min(32, ntasks);
      auto sion = core::SionParFile::open_write(fs, world, spec);
      SION_CHECK(sion.ok()) << sion.status().to_string();
      world.barrier();
      const double t0 = par::this_task()->now();
      SION_CHECK(sion.value()
                     ->write(fs::DataView::fill(std::byte{'s'}, per_task))
                     .ok());
      world.barrier();
      if (world.rank() == 0) p.sion_write = mbps(total_bytes, par::this_task()->now() - t0);
      SION_CHECK(sion.value()->close().ok());
    });
    // Reads happen right after writes within one job, like the paper's
    // experiment — on Jaguar the client caches are warm.
    engine.run(ntasks, [&](par::Comm& world) {
      auto sion = core::SionParFile::open_read(fs, world, "bw.sion");
      SION_CHECK(sion.ok()) << sion.status().to_string();
      world.barrier();
      const double t0 = par::this_task()->now();
      SION_CHECK(sion.value()->read_skip(per_task).ok());
      world.barrier();
      if (world.rank() == 0) p.sion_read = mbps(total_bytes, par::this_task()->now() - t0);
      SION_CHECK(sion.value()->close().ok());
    });
  }
  {
    fs::SimFs fs(machine);
    par::Engine engine(engine_config_for(machine));
    engine.run(ntasks, [&](par::Comm& world) {
      auto file = fs.create(strformat("tl.%06d", world.rank()));
      SION_CHECK(file.ok()) << file.status().to_string();
      world.barrier();
      const double t0 = par::this_task()->now();
      SION_CHECK(file.value()
                     ->pwrite(fs::DataView::fill(std::byte{'t'}, per_task), 0)
                     .ok());
      world.barrier();
      if (world.rank() == 0) p.tl_write = mbps(total_bytes, par::this_task()->now() - t0);
    });
    engine.run(ntasks, [&](par::Comm& world) {
      auto file = fs.open_read(strformat("tl.%06d", world.rank()));
      SION_CHECK(file.ok()) << file.status().to_string();
      world.barrier();
      const double t0 = par::this_task()->now();
      SION_CHECK(file.value()->pread_discard(per_task, 0).ok());
      world.barrier();
      if (world.rank() == 0) p.tl_read = mbps(total_bytes, par::this_task()->now() - t0);
    });
  }
  return p;
}

void run_machine(const char* label, Table& table,
                 const fs::SimConfig& machine,
                 const std::vector<int>& task_counts,
                 std::uint64_t total_bytes, double scale) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%8s %12s %12s %16s %16s %10s\n", "#tasks", "SION write",
              "SION read", "task-local write", "task-local read", "wall(s)");
  for (int raw_n : task_counts) {
    const int n = std::max(1, checked_trunc<int>(raw_n * scale));
    const auto total = static_cast<std::uint64_t>(
        static_cast<double>(total_bytes) * scale);
    const WallTimer wall;
    const Point p = run_point(machine, n, total);
    const double wall_s = wall.seconds();
    std::printf("%8s %12.1f %12.1f %16.1f %16.1f %10.3f\n",
                human_tasks(raw_n).c_str(), p.sion_write, p.sion_read,
                p.tl_write, p.tl_read, wall_s);
    table.row({raw_n, p.sion_write, p.sion_read, p.tl_write, p.tl_read,
               wall_s});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = opts.get_double("scale", 1.0);

  print_header("Figure 5: SIONlib vs task-local file bandwidth",
               "logical file mapping costs no bandwidth; Jaguar reads "
               "exceed the 40 GB/s maximum due to client caching");

  Report report("fig5_bandwidth", "SIONlib vs task-local file bandwidth");
  report.set_param("scale", scale);
  const std::vector<std::string> columns = {
      "tasks", "sion_write_mbps", "sion_read_mbps", "tasklocal_write_mbps",
      "tasklocal_read_mbps", "wall_s"};
  run_machine("Figure 5(a) Jugene (1 TB, 32 files, peak 6000 MB/s)",
              report.table("jugene", columns),
              scaled_machine(fs::JugeneConfig(), scale), {1024, 2048, 4096, 8192, 16384, 32768, 65536},
              kTiB, scale);
  run_machine("Figure 5(b) Jaguar (2 TB, 32 files, peak 40000 MB/s)",
              report.table("jaguar", columns),
              scaled_machine(fs::JaguarConfig(), scale), {128, 256, 512, 1024, 2048, 4096, 8192, 12288},
              2 * kTiB, scale);
  return report.write_if_requested(opts);
}
