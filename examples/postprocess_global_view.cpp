// Serial postprocessing of a multifile (paper sections 3.2.3/3.2.4 and 3.3):
// a parallel run writes a multifile with recovery frames enabled; a serial
// program then opens the *global view*, computes per-rank statistics via
// sion_get_locations-style metadata, reassembles the whole payload serially
// through ext::Remap (the N->1 restart), dumps the structure, splits one
// rank out, defragments the whole set — and finally demonstrates sionrepair
// on a deliberately "crashed" copy.
//
//   $ ./postprocess_global_view [--ntasks=16]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/options.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "ext/recovery.h"
#include "ext/remap.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "tools/defrag.h"
#include "tools/dump.h"
#include "tools/split.h"

using namespace sion;  // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int ntasks = static_cast<int>(opts.get_u64("ntasks", 16));

  fs::SimFs fs(fs::TestbedConfig());
  par::Engine engine;
  bool all_ok = true;

  // Parallel phase: every task writes a different volume (so the multifile
  // has gaps worth defragmenting), with chunk frames for repairability.
  engine.run(ntasks, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "run.sion";
    spec.chunksize = 8 * kKiB;
    spec.fsblksize = 4 * kKiB;
    spec.nfiles = 2;
    spec.chunk_frames = true;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    if (!sion.ok()) {
      all_ok = false;
      return;
    }
    std::vector<std::byte> data(
        1000 * static_cast<std::size_t>(world.rank() + 1));
    Rng rng(static_cast<std::uint64_t>(world.rank()));
    rng.fill_bytes(data);
    all_ok &= sion.value()->write(fs::DataView(data)).ok();
    all_ok &= sion.value()->close().ok();
  });

  // ---- global view: statistics over all logical files --------------------
  auto view = core::SionSerialFile::open_read(fs, "run.sion");
  if (!view.ok()) {
    std::fprintf(stderr, "open_read: %s\n", view.status().to_string().c_str());
    return 1;
  }
  const auto& loc = view.value()->locations();
  std::uint64_t total = 0;
  std::uint64_t largest = 0;
  int largest_rank = 0;
  for (int r = 0; r < loc.nranks; ++r) {
    std::uint64_t rank_bytes = 0;
    for (auto b : loc.bytes_written[static_cast<std::size_t>(r)]) {
      rank_bytes += b;
    }
    total += rank_bytes;
    if (rank_bytes > largest) {
      largest = rank_bytes;
      largest_rank = r;
    }
  }
  std::printf("global view: %d logical files, %s payload, largest is rank %d "
              "(%s)\n",
              loc.nranks, format_bytes(total).c_str(), largest_rank,
              format_bytes(largest).c_str());
  all_ok &= view.value()->close().ok();

  // ---- N->1 restart: the serial edge of ext::Remap -----------------------
  // The same global-view metadata lets a one-task "job" reassemble the full
  // concatenated payload — every rank's bytes in rank order — e.g. to feed
  // a serial analysis tool.
  std::vector<std::byte> assembled;
  engine.run(1, [&](par::Comm& solo) {
    auto remap = ext::Remap::open(fs, solo, "run.sion");
    if (!remap.ok()) {
      all_ok = false;
      return;
    }
    assembled.resize(remap.value()->total_bytes());
    all_ok &= remap.value()->restore(assembled, assembled.size()).ok();
    all_ok &= remap.value()->close().ok();
  });
  bool concat_ok = assembled.size() == total;
  for (std::uint64_t off = 0, r = 0; concat_ok && r < std::uint64_t(ntasks);
       ++r) {
    std::vector<std::byte> expect(1000 * (r + 1));
    Rng rng(r);
    rng.fill_bytes(expect);
    concat_ok &= std::equal(expect.begin(), expect.end(),
                            assembled.begin() + static_cast<std::ptrdiff_t>(off));
    off += expect.size();
  }
  std::printf("serial N->1 restart: reassembled %s, byte-identical: %s\n",
              format_bytes(assembled.size()).c_str(),
              concat_ok ? "yes" : "NO");
  all_ok &= concat_ok;

  // ---- the three command-line utilities, as library calls ----------------
  auto dump = tools::dump_multifile(fs, "run.sion");
  if (dump.ok()) {
    std::printf("\nsiondump:\n%s", dump.value().c_str());
  }
  auto split = tools::split_multifile(fs, "run.sion", "extracted",
                                      {.only_rank = largest_rank});
  std::printf("\nsionsplit: extracted %d file(s) for rank %d\n",
              split.value_or(0), largest_rank);
  all_ok &= split.ok();
  all_ok &= tools::defrag_multifile(fs, "run.sion", "compact.sion").ok();
  std::printf("siondefrag: run.sion -> compact.sion (%s -> %s on disk)\n",
              format_bytes(fs.stat_path("run.sion.000000").value().size +
                           fs.stat_path("run.sion.000001").value().size)
                  .c_str(),
              format_bytes(fs.stat_path("compact.sion.000000").value().size +
                           fs.stat_path("compact.sion.000001").value().size)
                  .c_str());

  // ---- crash + repair -----------------------------------------------------
  // Write another multifile but "crash" before close: metablock 2 missing.
  engine.run(ntasks, [&](par::Comm& world) {
    core::ParOpenSpec spec;
    spec.filename = "crashed.sion";
    spec.chunksize = 8 * kKiB;
    spec.fsblksize = 4 * kKiB;
    spec.chunk_frames = true;
    auto sion = core::SionParFile::open_write(fs, world, spec);
    if (!sion.ok()) {
      all_ok = false;
      return;
    }
    std::vector<std::byte> data(5000, static_cast<std::byte>(world.rank()));
    all_ok &= sion.value()->write(fs::DataView(data)).ok();
    // no close(): simulated premature termination
  });
  const bool unreadable = !core::SionSerialFile::open_read(fs, "crashed.sion").ok();
  auto report = ext::repair_multifile(fs, "crashed.sion");
  const bool repaired =
      report.ok() && core::SionSerialFile::open_read(fs, "crashed.sion").ok();
  std::printf("sionrepair: crashed multifile unreadable=%s, repaired=%s "
              "(%llu chunks recovered)\n",
              unreadable ? "yes" : "NO?", repaired ? "yes" : "NO",
              report.ok() ? static_cast<unsigned long long>(
                                report.value().chunks_recovered)
                          : 0ULL);
  all_ok &= unreadable && repaired;

  std::printf("\n%s\n", all_ok ? "postprocessing demo OK" : "FAILED");
  return all_ok ? 0 : 1;
}
