// Quickstart: write and read back a SION multifile with 8 parallel tasks on
// the local file system.
//
//   $ ./quickstart [--ntasks=8] [--nfiles=2] [--dir=/tmp]
//
// This is the paper's Listing 1 + Listing 2 translated to the C++ API:
// collective open, per-task independent writes with ensure_free_space /
// write_raw (the fwrite-style path) and sion_fwrite-style write(), then a
// collective read back that verifies every byte.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/options.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"
#include "core/api.h"
#include "fs/posix_fs.h"
#include "par/comm.h"
#include "par/engine.h"

using namespace sion;  // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int ntasks = static_cast<int>(opts.get_u64("ntasks", 8));
  const int nfiles = static_cast<int>(opts.get_u64("nfiles", 2));
  const std::string dir =
      opts.get_string("dir", std::filesystem::temp_directory_path().string());
  const std::string name = dir + "/quickstart.sion";

  fs::PosixFs pfs;
  par::Engine engine;
  bool all_ok = true;

  engine.run(ntasks, [&](par::Comm& world) {
    // ---- parallel write (collective open/close) -------------------------
    core::ParOpenSpec spec;
    spec.filename = name;
    spec.chunksize = 256 * kKiB;  // max bytes written in one piece
    spec.nfiles = nfiles;
    auto open = core::SionParFile::open_write(pfs, world, spec);
    if (!open.ok()) {
      std::fprintf(stderr, "open_write: %s\n",
                   open.status().to_string().c_str());
      all_ok = false;
      return;
    }
    auto& sion = *open.value();

    // Each task writes its own data into its logical task-local file.
    std::vector<std::byte> mine(100000 +
                                static_cast<std::size_t>(world.rank()) * 1000);
    Rng rng(static_cast<std::uint64_t>(world.rank()));
    rng.fill_bytes(mine);

    // fwrite-style: guarantee space, then write within the chunk...
    all_ok &= sion.ensure_free_space(4096).ok();
    all_ok &= sion.write_raw(fs::DataView(
        std::span<const std::byte>(mine.data(), 4096))).ok();
    // ...or sion_fwrite-style: any size, split at chunk boundaries.
    all_ok &= sion.write(fs::DataView(
        std::span<const std::byte>(mine.data() + 4096,
                                   mine.size() - 4096))).ok();
    all_ok &= sion.close().ok();

    // ---- parallel read back ----------------------------------------------
    auto ropen = core::SionParFile::open_read(pfs, world, name);
    if (!ropen.ok()) {
      std::fprintf(stderr, "open_read: %s\n",
                   ropen.status().to_string().c_str());
      all_ok = false;
      return;
    }
    std::vector<std::byte> back(mine.size());
    auto got = ropen.value()->read(back);
    const bool match = got.ok() && got.value() == mine.size() && back == mine;
    if (!match) all_ok = false;
    all_ok &= ropen.value()->close().ok();

    if (world.rank() == 0) {
      std::printf("wrote %d logical files into %d physical file(s): %s\n",
                  world.size(), nfiles, name.c_str());
    }
    std::printf("  task %3d: %zu bytes round-tripped %s\n", world.rank(),
                mine.size(), match ? "OK" : "MISMATCH");
  });

  // Clean up the demo files.
  for (int f = 0; f < nfiles; ++f) {
    std::filesystem::remove(core::physical_file_name(name, f, nfiles));
  }
  return all_ok ? 0 : 1;
}
