// Scalasca-style event tracing (paper section 5.2): every task records
// events during "measurement", writes them at finalisation — optionally
// slz-compressed, like Scalasca's zlib traces — and a serial "analyzer"
// loads each rank's trace back through the task-local view afterwards.
//
//   $ ./trace_scalasca --ntasks=32 --events=50000 --compress
//   $ ./trace_scalasca --backend=tasklocal ...   (the pre-SIONlib layout)
#include <cstdio>

#include "common/options.h"
#include "common/units.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/tracer.h"

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int ntasks = static_cast<int>(opts.get_u64("ntasks", 32));
  const std::uint64_t events = opts.get_u64("events", 50000);
  const bool compress = opts.get_bool("compress");
  const std::string backend_name = opts.get_string("backend", "sion");

  TracerSpec spec;
  spec.path = "trace";
  spec.backend = backend_name == "tasklocal" ? TraceBackend::kTaskLocal
                                             : TraceBackend::kSion;
  spec.nfiles = 4;
  spec.buffer_bytes = events * kTraceEventBytes + 4096;
  spec.compress = compress;

  fs::SimFs fs(fs::JugeneConfig());
  par::EngineConfig config;
  config.network = fs.config().network;
  par::Engine engine(config);
  bool all_ok = true;
  double activation = 0;
  std::uint64_t written_total = 0;

  engine.run(ntasks, [&](par::Comm& world) {
    // Experiment activation — the phase Table 2 shows SIONlib improving
    // 13.1x at 32 Ki cores.
    world.barrier();
    const double t0 = par::this_task()->now();
    auto tracer = Tracer::open(fs, world, spec);
    world.barrier();
    if (world.rank() == 0) activation = par::this_task()->now() - t0;
    if (!tracer.ok()) {
      all_ok = false;
      return;
    }
    // "Measurement": record a deterministic event stream.
    for (const auto& e : trace_generate(world.rank(), events, /*seed=*/7)) {
      tracer.value()->record(e);
    }
    auto written = tracer.value()->flush_and_close();
    if (!written.ok()) {
      all_ok = false;
      return;
    }
    written_total += written.value();  // tasks run cooperatively: no race
  });

  // Postmortem analysis: serial reload of each rank (Scalasca's analyzer
  // reads task-local views of the multifile).
  for (int r = 0; r < ntasks && all_ok; ++r) {
    auto loaded = trace_load_rank(fs, spec, r);
    if (!loaded.ok() || loaded.value().size() != events) {
      std::fprintf(stderr, "rank %d trace reload failed: %s\n", r,
                   loaded.status().to_string().c_str());
      all_ok = false;
    }
  }

  const std::uint64_t raw_bytes =
      static_cast<std::uint64_t>(ntasks) * events * kTraceEventBytes;
  std::printf("traced %d tasks x %llu events (%s raw) via %s%s\n", ntasks,
              static_cast<unsigned long long>(events),
              format_bytes(raw_bytes).c_str(), backend_name.c_str(),
              compress ? " + slz compression" : "");
  std::printf("  activation: %s   bytes written: %s (ratio %.2f)   "
              "reload: %s\n",
              format_seconds(activation).c_str(),
              format_bytes(written_total).c_str(),
              written_total > 0
                  ? static_cast<double>(raw_bytes) /
                        static_cast<double>(written_total)
                  : 0.0,
              all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}
