// MP2C-style checkpoint/restart (paper section 5.1): a particle simulation
// writes restart files (52 bytes per particle) and reads them back, under
// any of the three I/O strategies:
//
//   $ ./checkpoint_mp2c --strategy=sion --particles=1m --ntasks=64
//   $ ./checkpoint_mp2c --strategy=seq ...      (the original MP2C scheme)
//   $ ./checkpoint_mp2c --strategy=tasklocal ...
//   $ ./checkpoint_mp2c --strategy=sion --collective --group-size=16
//   $ ./checkpoint_mp2c --strategy=sion --ntasks=64 --restart-ntasks=24
//   $ ./checkpoint_mp2c --strategy=sion --buddy --replicas=2 --domains=4
//         ... --kill-domains=1 --restart-ntasks=24   (one command line)
//
// --collective aggregates the SION strategy through ext::Collective: groups
// of --group-size ranks funnel their particles through one collector rank,
// which issues large packed writes (paper section 6, coalescing I/O).
//
// --restart-ntasks restores the checkpoint onto a *different* task count
// through ext::Remap (the resubmitted-at-another-scale scenario): each of
// the M restart tasks receives its contiguous particle range of the global
// array, redistributed from the N writer streams via the multifile's
// global-view metadata.
//
// --buddy replicates the checkpoint over --domains failure domains with
// --replicas total copies (ext::Buddy); --kill-domains=<n> then deletes
// every file the first n domains own before the restart, which must heal
// the loss from the surviving replicas and still verify bit for bit.
//
// --staging adds a node-local burst-buffer tier (--tasks-per-node,
// --drain-bw) and routes the SION checkpoint through it: the write lands on
// the fast tier and drains to the parallel file system in the background
// (ext::Staging behind workloads::CheckpointSession).
//
// Runs on the simulated Jugene file system, prints the virtual I/O times,
// and verifies the restored particles bit for bit.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/options.h"
#include "common/units.h"
#include "core/metadata.h"
#include "ext/buddy.h"
#include "fs/sim/fault.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"
#include "workloads/mp2c.h"

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

namespace {

// First particle of `rank`'s domain under mp2c's decomposition (total/ntasks
// each, remainder spread over low ranks).
std::uint64_t particle_offset(std::uint64_t total, int ntasks, int rank) {
  const std::uint64_t base = total / static_cast<std::uint64_t>(ntasks);
  const std::uint64_t rem = total % static_cast<std::uint64_t>(ntasks);
  return base * static_cast<std::uint64_t>(rank) +
         std::min<std::uint64_t>(static_cast<std::uint64_t>(rank), rem);
}

// The bytes restart task `rank` (of `nreaders`) must receive: its particle
// range of the global array, re-serialized from the overlapping *writer*
// domains — the ground truth a different-scale restart is checked against.
std::vector<std::byte> expected_slice(std::uint64_t particles, int nwriters,
                                      int nreaders, int rank) {
  const std::uint64_t lo = particle_offset(particles, nreaders, rank);
  const std::uint64_t hi = particle_offset(particles, nreaders, rank + 1);
  std::vector<std::byte> out;
  out.reserve((hi - lo) * kParticleBytes);
  for (int w = 0; w < nwriters; ++w) {
    const std::uint64_t wlo = particle_offset(particles, nwriters, w);
    const std::uint64_t whi = particle_offset(particles, nwriters, w + 1);
    if (whi <= lo || wlo >= hi) continue;
    const auto theirs = mp2c_generate(particles, nwriters, w, /*seed=*/2026);
    const auto bytes = mp2c_serialize(theirs);
    const std::uint64_t from = std::max(lo, wlo) - wlo;
    const std::uint64_t to = std::min(hi, whi) - wlo;
    out.insert(out.end(),
               bytes.begin() + static_cast<std::ptrdiff_t>(from *
                                                           kParticleBytes),
               bytes.begin() + static_cast<std::ptrdiff_t>(to *
                                                           kParticleBytes));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int ntasks = static_cast<int>(opts.get_u64("ntasks", 64));
  const int restart_ntasks =
      static_cast<int>(opts.get_u64("restart-ntasks", 0));
  const std::uint64_t particles = opts.get_u64("particles", 1000000);
  const std::string strategy_name = opts.get_string("strategy", "sion");

  CheckpointSpec spec;
  spec.path = "restart.ckpt";
  if (strategy_name == "sion") {
    spec.strategy = IoStrategy::kSion;
  } else if (strategy_name == "seq") {
    spec.strategy = IoStrategy::kSingleFileSeq;
  } else if (strategy_name == "tasklocal") {
    spec.strategy = IoStrategy::kTaskLocal;
  } else {
    std::fprintf(stderr, "unknown --strategy (sion|seq|tasklocal)\n");
    return 2;
  }
  const bool use_collective = opts.get_bool("collective");
  if (use_collective) {
    ext::CollectiveConfig aggregation;
    aggregation.group_size = static_cast<int>(opts.get_u64("group-size", 16));
    spec.collective = aggregation;
  }
  const bool use_buddy = opts.get_bool("buddy");
  const int replicas = static_cast<int>(opts.get_u64("replicas", 2));
  const int domains = static_cast<int>(opts.get_u64("domains", 4));
  if (use_buddy) {
    ext::BuddyConfig buddy;
    buddy.replicas = replicas;
    buddy.num_domains = domains;
    spec.protection = buddy;
  }
  const bool use_staging = opts.get_bool("staging");
  const int kill_domains = static_cast<int>(opts.get_u64("kill-domains", 0));
  if (restart_ntasks != 0 && spec.strategy != IoStrategy::kSion) {
    std::fprintf(stderr,
                 "--restart-ntasks needs --strategy=sion (only the multifile "
                 "keeps every rank's stream addressable)\n");
    return 2;
  }
  if ((use_buddy || kill_domains > 0) &&
      spec.strategy != IoStrategy::kSion) {
    std::fprintf(stderr, "--buddy needs --strategy=sion\n");
    return 2;
  }
  if (kill_domains > 0 && !use_buddy) {
    std::fprintf(stderr,
                 "--kill-domains without --buddy would lose data for good\n");
    return 2;
  }
  if (kill_domains > 0 && kill_domains >= replicas) {
    std::fprintf(stderr,
                 "--kill-domains=%d exceeds the survivable budget of "
                 "replicas-1 = %d lost domains\n",
                 kill_domains, replicas - 1);
    return 2;
  }
  if (use_staging && spec.strategy != IoStrategy::kSion) {
    std::fprintf(stderr, "--staging needs --strategy=sion\n");
    return 2;
  }

  fs::SimConfig machine = fs::JugeneConfig();
  if (use_staging) {
    machine.burst_buffer.tasks_per_node =
        static_cast<int>(opts.get_u64("tasks-per-node", 4));
    machine.burst_buffer.node_bandwidth = 4.0e9;
    machine.burst_buffer.drain_bandwidth = opts.get_double("drain-bw", 1.0e9);
  }
  fs::SimFs fs(machine);
  std::unique_ptr<fs::SimFs> burst_buffer;
  if (use_staging) {
    burst_buffer = std::make_unique<fs::SimFs>(
        fs::BurstBufferTierConfig(machine, ntasks));
    ext::StagingConfig staging;
    staging.fast_tier = burst_buffer.get();
    spec.staging = staging;
  }
  par::EngineConfig config;
  config.network = fs.config().network;
  par::Engine engine(config);
  bool all_ok = true;

  const double t0 = engine.epoch();
  engine.run(ntasks, [&](par::Comm& world) {
    const auto mine = mp2c_generate(particles, world.size(), world.rank(),
                                    /*seed=*/2026);
    const auto payload = mp2c_serialize(mine);
    if (!write_checkpoint(fs, world, spec, fs::DataView(payload)).ok()) {
      all_ok = false;
    }
  });
  const double t_write = engine.epoch() - t0;

  fs.drop_caches();  // restart in a later job

  // The failure scenario: the first --kill-domains domains lose every file
  // they own (their primary file and their replica-set files); the restart
  // below must heal through ext::Buddy before restoring.
  if (kill_domains > 0) {
    fs::FaultPlan plan;
    for (int d = 0; d < kill_domains; ++d) {
      plan.lose(core::physical_file_name(spec.path, d, domains));
      for (int k = 1; k < replicas; ++k) {
        plan.lose(core::physical_file_name(
            ext::Buddy::replica_name(spec.path, k), d, domains));
      }
    }
    fs.arm_faults(plan);
    std::printf("killed %d of %d failure domains (%llu files lost)\n",
                kill_domains, domains,
                static_cast<unsigned long long>(
                    fs.fault_counters().files_lost));
  }

  // N->M restart: the resubmitted job runs at a different scale and each
  // task pulls its particle range out of the N writer streams. With no
  // --restart-ntasks the classic same-count read path restores each writer's
  // own stream.
  const int nreaders = restart_ntasks != 0 ? restart_ntasks : ntasks;
  CheckpointSpec read_spec = spec;
  read_spec.restart_ntasks = restart_ntasks;
  const double t1 = engine.epoch();
  engine.run(nreaders, [&](par::Comm& world) {
    const auto expect =
        restart_ntasks != 0
            ? expected_slice(particles, ntasks, nreaders, world.rank())
            : mp2c_serialize(mp2c_generate(particles, world.size(),
                                           world.rank(), /*seed=*/2026));
    std::vector<std::byte> back(expect.size());
    if (!read_checkpoint(fs, world, read_spec, expect.size(), back).ok() ||
        back != expect) {
      all_ok = false;
      return;
    }
    auto restored = mp2c_deserialize(back);
    if (!restored.ok() ||
        restored.value().size() != expect.size() / kParticleBytes) {
      all_ok = false;
    }
  });
  const double t_read = engine.epoch() - t1;

  std::printf("MP2C checkpoint: %llu particles (%s) over %d tasks via %s%s\n",
              static_cast<unsigned long long>(particles),
              format_bytes(particles * kParticleBytes).c_str(), ntasks,
              strategy_name.c_str(),
              use_collective ? " (collective aggregation)" : "");
  if (use_buddy) {
    std::printf("  buddy redundancy: %d copies over %d failure domains\n",
                replicas, domains);
  }
  if (use_staging) {
    std::printf("  staged through a node-local burst buffer "
                "(write includes the drain)\n");
  }
  if (restart_ntasks != 0) {
    std::printf("  write: %s   N->M restart onto %d tasks: %s   "
                "restart verified: %s\n",
                format_seconds(t_write).c_str(), nreaders,
                format_seconds(t_read).c_str(), all_ok ? "OK" : "FAILED");
  } else {
    std::printf("  write: %s   read: %s   restart verified: %s\n",
                format_seconds(t_write).c_str(),
                format_seconds(t_read).c_str(), all_ok ? "OK" : "FAILED");
  }
  return all_ok ? 0 : 1;
}
