// MP2C-style checkpoint/restart (paper section 5.1): a particle simulation
// writes restart files (52 bytes per particle) and reads them back, under
// any of the three I/O strategies:
//
//   $ ./checkpoint_mp2c --strategy=sion --particles=1m --ntasks=64
//   $ ./checkpoint_mp2c --strategy=seq ...      (the original MP2C scheme)
//   $ ./checkpoint_mp2c --strategy=tasklocal ...
//   $ ./checkpoint_mp2c --strategy=sion --collective --group-size=16
//
// --collective aggregates the SION strategy through ext::Collective: groups
// of --group-size ranks funnel their particles through one collector rank,
// which issues large packed writes (paper section 6, coalescing I/O).
//
// Runs on the simulated Jugene file system, prints the virtual I/O times,
// and verifies the restored particles bit for bit.
#include <cstdio>
#include <vector>

#include "common/options.h"
#include "common/units.h"
#include "fs/sim/machine.h"
#include "fs/sim/simfs.h"
#include "par/comm.h"
#include "par/engine.h"
#include "workloads/checkpoint.h"
#include "workloads/mp2c.h"

using namespace sion;             // NOLINT(google-build-using-namespace)
using namespace sion::workloads;  // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int ntasks = static_cast<int>(opts.get_u64("ntasks", 64));
  const std::uint64_t particles = opts.get_u64("particles", 1000000);
  const std::string strategy_name = opts.get_string("strategy", "sion");

  CheckpointSpec spec;
  spec.path = "restart.ckpt";
  if (strategy_name == "sion") {
    spec.strategy = IoStrategy::kSion;
  } else if (strategy_name == "seq") {
    spec.strategy = IoStrategy::kSingleFileSeq;
  } else if (strategy_name == "tasklocal") {
    spec.strategy = IoStrategy::kTaskLocal;
  } else {
    std::fprintf(stderr, "unknown --strategy (sion|seq|tasklocal)\n");
    return 2;
  }
  spec.collective = opts.get_bool("collective");
  spec.collective_config.group_size =
      static_cast<int>(opts.get_u64("group-size", 16));

  fs::SimFs fs(fs::JugeneConfig());
  par::EngineConfig config;
  config.network = fs.config().network;
  par::Engine engine(config);
  bool all_ok = true;

  const double t0 = engine.epoch();
  engine.run(ntasks, [&](par::Comm& world) {
    const auto mine = mp2c_generate(particles, world.size(), world.rank(),
                                    /*seed=*/2026);
    const auto payload = mp2c_serialize(mine);
    if (!write_checkpoint(fs, world, spec, fs::DataView(payload)).ok()) {
      all_ok = false;
    }
  });
  const double t_write = engine.epoch() - t0;

  fs.drop_caches();  // restart in a later job

  const double t1 = engine.epoch();
  engine.run(ntasks, [&](par::Comm& world) {
    const auto mine = mp2c_generate(particles, world.size(), world.rank(),
                                    /*seed=*/2026);
    const auto expect = mp2c_serialize(mine);
    std::vector<std::byte> back(expect.size());
    if (!read_checkpoint(fs, world, spec, expect.size(), back).ok() ||
        back != expect) {
      all_ok = false;
      return;
    }
    auto restored = mp2c_deserialize(back);
    if (!restored.ok() || restored.value().size() != mine.size()) {
      all_ok = false;
    }
  });
  const double t_read = engine.epoch() - t1;

  std::printf("MP2C checkpoint: %llu particles (%s) over %d tasks via %s%s\n",
              static_cast<unsigned long long>(particles),
              format_bytes(particles * kParticleBytes).c_str(), ntasks,
              strategy_name.c_str(),
              spec.collective ? " (collective aggregation)" : "");
  std::printf("  write: %s   read: %s   restart verified: %s\n",
              format_seconds(t_write).c_str(), format_seconds(t_read).c_str(),
              all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}
